"""Charging requests and their service lifecycle.

A :class:`ChargingRequest` is what a customer hands the daemon: a device
(who/where/how much energy), a submission time, and optional service
terms — a deadline by which charging must have *started* and a maximum
acceptable price.  The kernel tracks each request through the lifecycle::

    SUBMITTED ── admission ──> ADMITTED ── epoch fold ──> GROUPED
        │                         │                          │
        └──> REJECTED             ├──> EXPIRED (queue)       ├──> CHARGING ──> DONE
                                  └──> CANCELLED             ├──> EXPIRED (plan)
                                                             ├──> CANCELLED
                                                             └──> EVACUATING
                                                                    │ (charger failed /
                                                                    │  evicted over quote)
                    next epoch: re-quote vs. original ceiling ──────┤
                      ├──> GROUPED (re-folded, ceiling holds)       │
                      ├──> REJECTED (charger_failed)                │
                      └──> EXPIRED / CANCELLED ─────────────────────┘

Requests serialize to plain JSON (:meth:`ChargingRequest.to_dict` /
:meth:`ChargingRequest.from_dict`) because submissions are exactly what
the durable journal must replay to reconstruct a killed daemon.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..core import Device
from ..errors import ConfigurationError
from ..geometry import Point

__all__ = ["RequestState", "ChargingRequest", "RequestRecord"]


class RequestState:
    """Lifecycle states (plain strings so they journal/JSON naturally)."""

    SUBMITTED = "submitted"
    ADMITTED = "admitted"
    GROUPED = "grouped"
    CHARGING = "charging"
    DONE = "done"
    REJECTED = "rejected"
    EXPIRED = "expired"
    #: Displaced from the live plan (its charger failed, or an eviction
    #: kept the price-ceiling invariant); re-quoted at the next epoch.
    EVACUATING = "evacuating"
    #: Withdrawn by the customer (or a no-show) before charging started.
    CANCELLED = "cancelled"

    #: States a request can never leave.
    TERMINAL = frozenset({DONE, REJECTED, EXPIRED, CANCELLED})


@dataclass(frozen=True)
class ChargingRequest:
    """One customer request: a device asking for service under given terms.

    Parameters
    ----------
    request_id:
        Stable identifier, unique within one daemon's lifetime.
    device:
        The requesting device (position, demand, moving-cost valuation).
    submitted_at:
        Logical submission time in seconds.
    deadline:
        Optional absolute time by which the request's session must have
        *departed* (started charging); otherwise it expires.
    max_price:
        Optional cap on the comprehensive cost the customer accepts.  The
        admission controller rejects requests whose standalone quote
        already exceeds it; admitted requests are guaranteed to realize a
        cost no greater than their quote (see docs/SERVICE.md).
    """

    request_id: str
    device: Device
    submitted_at: float
    deadline: Optional[float] = None
    max_price: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.request_id:
            raise ConfigurationError("request_id must be a nonempty string")
        if not (math.isfinite(self.submitted_at) and self.submitted_at >= 0.0):
            raise ConfigurationError(
                f"request {self.request_id!r}: submitted_at must be a finite "
                f"nonnegative time, got {self.submitted_at}"
            )
        if self.deadline is not None and (
            not math.isfinite(self.deadline) or self.deadline <= self.submitted_at
        ):
            raise ConfigurationError(
                f"request {self.request_id!r}: deadline must be finite and after "
                f"submission ({self.submitted_at}), got {self.deadline}"
            )
        if self.max_price is not None and (
            not math.isfinite(self.max_price) or self.max_price <= 0.0
        ):
            raise ConfigurationError(
                f"request {self.request_id!r}: max_price must be finite and "
                f"positive, got {self.max_price}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form; the journal's ``submit`` record payload."""
        return {
            "id": self.request_id,
            "t": float(self.submitted_at),
            "deadline": None if self.deadline is None else float(self.deadline),
            "max_price": None if self.max_price is None else float(self.max_price),
            "device": {
                "id": self.device.device_id,
                "x": float(self.device.position.x),
                "y": float(self.device.position.y),
                "demand": float(self.device.demand),
                "moving_rate": float(self.device.moving_rate),
                "speed": float(self.device.speed),
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChargingRequest":
        """Inverse of :meth:`to_dict`; used by journal replay and traces."""
        dev = data["device"]
        return cls(
            request_id=data["id"],
            device=Device(
                device_id=dev["id"],
                position=Point(float(dev["x"]), float(dev["y"])),
                demand=float(dev["demand"]),
                moving_rate=float(dev["moving_rate"]),
                speed=float(dev.get("speed", 1.0)),
            ),
            submitted_at=float(data["t"]),
            deadline=data.get("deadline"),
            max_price=data.get("max_price"),
        )


class RequestRecord:
    """Mutable per-request tracking state inside the kernel."""

    __slots__ = (
        "request",
        "state",
        "quote",
        "quote_charger",
        "reason",
        "device_index",
        "grouped_at",
        "departed_at",
        "completed_at",
        "session_seq",
        "realized_cost",
    )

    def __init__(self, request: ChargingRequest):
        self.request = request
        self.state: str = RequestState.SUBMITTED
        self.quote: Optional[float] = None
        self.quote_charger: Optional[int] = None
        self.reason: Optional[str] = None
        self.device_index: Optional[int] = None
        self.grouped_at: Optional[float] = None
        self.departed_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self.session_seq: Optional[int] = None
        self.realized_cost: Optional[float] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RequestRecord({self.request.request_id!r}, state={self.state!r}, "
            f"quote={self.quote!r})"
        )
