"""``python -m repro.service`` — alias for the ``ccs-serve`` CLI."""

from ..cli import serve_main

if __name__ == "__main__":
    raise SystemExit(serve_main())
