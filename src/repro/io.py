"""JSON serialization of instances and schedules.

Experiments produce instances and schedules worth keeping: regression
fixtures, the exact instance behind a plotted point, schedules to replay
on the testbed.  This module round-trips both through plain JSON with a
versioned envelope, refusing payloads it cannot faithfully reconstruct
(unknown tariff or mobility types) rather than guessing.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from .core import CCSInstance, Device, Schedule, Session
from .errors import ConfigurationError
from .geometry import Field, Point
from .mobility import LinearMobility, ManhattanMobility, QuadraticMobility
from .wpt import Charger, LinearTariff, PiecewiseConcaveTariff, PowerLawTariff

__all__ = [
    "charger_to_dict",
    "charger_from_dict",
    "instance_to_dict",
    "instance_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_instance",
    "load_instance",
    "save_schedule",
    "load_schedule",
]

FORMAT_VERSION = 1

_TARIFF_TYPES = {
    "linear": LinearTariff,
    "power_law": PowerLawTariff,
    "piecewise": PiecewiseConcaveTariff,
}
_MOBILITY_TYPES = {
    "linear": LinearMobility,
    "quadratic": QuadraticMobility,
    "manhattan": ManhattanMobility,
}


def _tariff_to_dict(tariff) -> Dict[str, Any]:
    if isinstance(tariff, PowerLawTariff):
        return {
            "type": "power_law",
            "base": tariff.base,
            "unit": tariff.unit,
            "exponent": tariff.exponent,
        }
    if isinstance(tariff, LinearTariff):
        return {"type": "linear", "base": tariff.base, "unit": tariff.unit}
    if isinstance(tariff, PiecewiseConcaveTariff):
        return {
            "type": "piecewise",
            "base": tariff.base,
            "breakpoints": list(tariff.breakpoints),
            "marginal_prices": list(tariff.marginal_prices),
        }
    raise ConfigurationError(
        f"cannot serialize tariff of type {type(tariff).__name__}"
    )


def _tariff_from_dict(data: Dict[str, Any]):
    kind = data.get("type")
    if kind not in _TARIFF_TYPES:
        raise ConfigurationError(
            f"unknown tariff type {kind!r}; known: {sorted(_TARIFF_TYPES)}"
        )
    kwargs = {k: v for k, v in data.items() if k != "type"}
    return _TARIFF_TYPES[kind](**kwargs)


def _mobility_to_dict(mobility) -> Dict[str, Any]:
    if isinstance(mobility, QuadraticMobility):
        return {"type": "quadratic", "curvature": mobility.curvature}
    if isinstance(mobility, LinearMobility):
        return {"type": "linear"}
    if isinstance(mobility, ManhattanMobility):
        return {"type": "manhattan"}
    raise ConfigurationError(
        f"cannot serialize mobility model of type {type(mobility).__name__}"
    )


def _mobility_from_dict(data: Dict[str, Any]):
    kind = data.get("type")
    if kind not in _MOBILITY_TYPES:
        raise ConfigurationError(
            f"unknown mobility type {kind!r}; known: {sorted(_MOBILITY_TYPES)}"
        )
    kwargs = {k: v for k, v in data.items() if k != "type"}
    return _MOBILITY_TYPES[kind](**kwargs)


def charger_to_dict(charger: Charger) -> Dict[str, Any]:
    """Serialize one charger to a plain-JSON dict.

    Unlike the instance envelope (which predates it and omits the field
    for compatibility), this round-trips ``service_discipline`` too — the
    sharded replay tasks ship chargers to worker processes through it and
    must reconstruct them exactly.
    """
    return {
        "id": charger.charger_id,
        "x": charger.position.x,
        "y": charger.position.y,
        "tariff": _tariff_to_dict(charger.tariff),
        "efficiency": charger.efficiency,
        "transmit_power": charger.transmit_power,
        "capacity": charger.capacity,
        "service_discipline": charger.service_discipline,
    }


def charger_from_dict(data: Dict[str, Any]) -> Charger:
    """Reconstruct a charger serialized by :func:`charger_to_dict`."""
    return Charger(
        charger_id=data["id"],
        position=Point(data["x"], data["y"]),
        tariff=_tariff_from_dict(data["tariff"]),
        efficiency=data["efficiency"],
        transmit_power=data["transmit_power"],
        capacity=data["capacity"],
        service_discipline=data.get("service_discipline", "sequential"),
    )


def instance_to_dict(instance: CCSInstance) -> Dict[str, Any]:
    """Serialize an instance to a JSON-compatible dict (versioned)."""
    return {
        "format": "ccs-instance",
        "version": FORMAT_VERSION,
        "devices": [
            {
                "id": d.device_id,
                "x": d.position.x,
                "y": d.position.y,
                "demand": d.demand,
                "moving_rate": d.moving_rate,
                "speed": d.speed,
            }
            for d in instance.devices
        ],
        "chargers": [
            {
                "id": c.charger_id,
                "x": c.position.x,
                "y": c.position.y,
                "tariff": _tariff_to_dict(c.tariff),
                "efficiency": c.efficiency,
                "transmit_power": c.transmit_power,
                "capacity": c.capacity,
            }
            for c in instance.chargers
        ],
        "mobility": _mobility_to_dict(instance.mobility),
        "field": (
            {"width": instance.field_area.width, "height": instance.field_area.height}
            if instance.field_area is not None
            else None
        ),
    }


def _check_envelope(data: Dict[str, Any], expected: str) -> None:
    if data.get("format") != expected:
        raise ConfigurationError(
            f"payload is {data.get('format')!r}, expected {expected!r}"
        )
    if data.get("version") != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported format version {data.get('version')!r} "
            f"(this library reads version {FORMAT_VERSION})"
        )


def instance_from_dict(data: Dict[str, Any]) -> CCSInstance:
    """Reconstruct an instance serialized by :func:`instance_to_dict`."""
    _check_envelope(data, "ccs-instance")
    devices = [
        Device(
            device_id=d["id"],
            position=Point(d["x"], d["y"]),
            demand=d["demand"],
            moving_rate=d["moving_rate"],
            speed=d["speed"],
        )
        for d in data["devices"]
    ]
    chargers = [
        Charger(
            charger_id=c["id"],
            position=Point(c["x"], c["y"]),
            tariff=_tariff_from_dict(c["tariff"]),
            efficiency=c["efficiency"],
            transmit_power=c["transmit_power"],
            capacity=c["capacity"],
        )
        for c in data["chargers"]
    ]
    field = data.get("field")
    return CCSInstance(
        devices=devices,
        chargers=chargers,
        mobility=_mobility_from_dict(data["mobility"]),
        field_area=Field(field["width"], field["height"]) if field else None,
    )


def schedule_to_dict(schedule: Schedule, instance: CCSInstance) -> Dict[str, Any]:
    """Serialize a schedule using stable identifiers (not indices)."""
    return {
        "format": "ccs-schedule",
        "version": FORMAT_VERSION,
        "solver": schedule.solver,
        "metadata": dict(schedule.metadata),
        "sessions": [
            {
                "charger": instance.chargers[s.charger].charger_id,
                "members": sorted(
                    instance.devices[i].device_id for i in s.members
                ),
            }
            for s in schedule.sessions
        ],
    }


def schedule_from_dict(data: Dict[str, Any], instance: CCSInstance) -> Schedule:
    """Reconstruct a schedule against *instance* (identifiers must resolve)."""
    _check_envelope(data, "ccs-schedule")
    sessions = []
    for s in data["sessions"]:
        charger = instance.charger_index(s["charger"])
        members = frozenset(instance.device_index(d) for d in s["members"])
        sessions.append(Session(charger=charger, members=members))
    return Schedule(
        sessions, solver=data.get("solver", "unknown"), metadata=data.get("metadata")
    )


def save_instance(instance: CCSInstance, path: str) -> None:
    """Write an instance to *path* as JSON."""
    with open(path, "w") as fh:
        json.dump(instance_to_dict(instance), fh, indent=2)


def load_instance(path: str) -> CCSInstance:
    """Read an instance written by :func:`save_instance`."""
    with open(path) as fh:
        return instance_from_dict(json.load(fh))


def save_schedule(schedule: Schedule, instance: CCSInstance, path: str) -> None:
    """Write a schedule to *path* as JSON (identifiers, not indices)."""
    with open(path, "w") as fh:
        json.dump(schedule_to_dict(schedule, instance), fh, indent=2)


def load_schedule(path: str, instance: CCSInstance) -> Schedule:
    """Read a schedule written by :func:`save_schedule`."""
    with open(path) as fh:
        return schedule_from_dict(json.load(fh), instance)
