"""Unit tests for the metrics snapshot merge (the shard aggregation rules).

The contract (``repro.service.metrics.merge_snapshots``): counters sum,
gauges stay per-source re-keyed by label, histograms add bucket-wise and
refuse mismatched bucket layouts.  The sharded service's merged snapshot
is this function applied to the per-shard kernels.
"""

from __future__ import annotations

import pytest

from repro.service import Metrics, merge_snapshots


def make_registry(scale: int) -> Metrics:
    m = Metrics()
    m.counter("requests_total").inc(10 * scale)
    m.counter("rejected_total").inc(scale)
    m.gauge("queue_depth").set(float(scale))
    h = m.histogram("quote_cost", bounds=(1.0, 10.0, 100.0))
    for v in (0.5 * scale, 5.0, 500.0):
        h.observe(v)
    return m


class TestMergeSnapshots:
    def test_counters_sum(self):
        merged = merge_snapshots(
            {"a": make_registry(1).snapshot(), "b": make_registry(2).snapshot()}
        )
        assert merged["counters"]["requests_total"] == 30
        assert merged["counters"]["rejected_total"] == 3

    def test_counters_missing_in_one_source_still_sum(self):
        a = Metrics()
        a.counter("only_a").inc(4)
        b = Metrics()
        b.counter("only_b").inc(6)
        merged = Metrics.merge({"a": a, "b": b})
        assert merged["counters"] == {"only_a": 4, "only_b": 6}

    def test_gauges_rekeyed_per_source(self):
        merged = merge_snapshots(
            {"shard-0000": make_registry(1).snapshot(),
             "shard-0001": make_registry(3).snapshot()}
        )
        assert merged["gauges"]["queue_depth"] == {
            "shard-0000": 1.0,
            "shard-0001": 3.0,
        }

    def test_histograms_add_bucketwise(self):
        merged = merge_snapshots(
            {"a": make_registry(1).snapshot(), "b": make_registry(2).snapshot()}
        )
        hist = merged["histograms"]["quote_cost"]
        assert hist["count"] == 6
        assert hist["sum"] == pytest.approx(0.5 + 5.0 + 500.0 + 1.0 + 5.0 + 500.0)
        # a: 0.5→le_1, 5→le_10, 500→inf; b: 1.0→le_1, 5→le_10, 500→inf.
        assert hist["buckets"] == {"le_1": 2, "le_10": 2, "le_100": 0, "inf": 2}

    def test_mismatched_buckets_raise(self):
        a = Metrics()
        a.histogram("h", bounds=(1.0, 2.0)).observe(1.5)
        b = Metrics()
        b.histogram("h", bounds=(1.0, 3.0)).observe(1.5)
        with pytest.raises(ValueError, match="bucket"):
            Metrics.merge({"a": a, "b": b})

    def test_single_source_is_identity_up_to_gauge_rekeying(self):
        snap = make_registry(2).snapshot()
        merged = merge_snapshots({"solo": snap})
        assert merged["counters"] == snap["counters"]
        assert merged["histograms"] == snap["histograms"]
        assert merged["gauges"] == {
            name: {"solo": value} for name, value in snap["gauges"].items()
        }

    def test_empty_merge(self):
        assert merge_snapshots({}) == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_merge_is_order_insensitive_on_integers(self):
        # Counter/bucket totals are ints; merging in either label order
        # must produce the same snapshot (float sums accumulate in label
        # order, so keep the histogram sums integral here).
        a, b = make_registry(2).snapshot(), make_registry(4).snapshot()
        ab = merge_snapshots({"a": a, "b": b})
        ba = merge_snapshots({"b": b, "a": a})
        assert ab["counters"] == ba["counters"]
        assert ab["histograms"]["quote_cost"]["buckets"] == (
            ba["histograms"]["quote_cost"]["buckets"]
        )

    def test_merged_snapshot_keys_are_sorted(self):
        b = Metrics()
        b.counter("zz").inc()
        b.counter("aa").inc()
        merged = Metrics.merge({"b": b})
        assert list(merged["counters"]) == sorted(merged["counters"])
