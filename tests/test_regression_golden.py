"""Golden-file regression tests.

Pins every solver's cost on three serialized fixture instances.  A change
to any algorithm, cost model, or tariff that shifts these numbers fails
here first — with the fixture file pointing at exactly which instance
moved.  Regenerate deliberately via the snippet in this file's history if
an intentional behaviour change lands.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import (
    ccsa,
    ccsga,
    comprehensive_cost,
    noncooperation,
    optimal_schedule,
)
from repro.io import instance_from_dict

FIXTURES = Path(__file__).parent / "fixtures"


def load_fixture(name):
    with open(FIXTURES / f"{name}.json") as fh:
        return instance_from_dict(json.load(fh))


def expected():
    with open(FIXTURES / "expected_costs.json") as fh:
        return json.load(fh)


FIXTURE_NAMES = sorted(expected())


@pytest.mark.parametrize("name", FIXTURE_NAMES)
class TestGoldenCosts:
    def test_noncooperation_cost_pinned(self, name):
        inst = load_fixture(name)
        assert comprehensive_cost(noncooperation(inst), inst) == pytest.approx(
            expected()[name]["nca"], rel=1e-9
        )

    def test_ccsa_cost_pinned(self, name):
        inst = load_fixture(name)
        assert comprehensive_cost(ccsa(inst), inst) == pytest.approx(
            expected()[name]["ccsa"], rel=1e-9
        )

    def test_ccsga_cost_pinned(self, name):
        inst = load_fixture(name)
        cost = comprehensive_cost(ccsga(inst, certify=False).schedule, inst)
        assert cost == pytest.approx(expected()[name]["ccsga"], rel=1e-9)

    def test_optimal_cost_pinned(self, name):
        exp = expected()[name]
        if "optimal" not in exp:
            pytest.skip("instance too large for the exact solver")
        inst = load_fixture(name)
        assert comprehensive_cost(optimal_schedule(inst), inst) == pytest.approx(
            exp["optimal"], rel=1e-9
        )


class TestGoldenConsistency:
    @pytest.mark.parametrize("name", FIXTURE_NAMES)
    def test_recorded_costs_ordered(self, name):
        exp = expected()[name]
        assert exp["ccsa"] <= exp["nca"]
        assert exp["ccsga"] <= exp["nca"]
        if "optimal" in exp:
            assert exp["optimal"] <= exp["ccsa"] + 1e-9
            assert exp["optimal"] <= exp["ccsga"] + 1e-9

    def test_fixture_files_exist_for_all_expectations(self):
        for name in FIXTURE_NAMES:
            assert (FIXTURES / f"{name}.json").exists()
