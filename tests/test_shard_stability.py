"""Shard-count stability: interior devices cannot tell 2 shards from 4.

Satellite 2's regression target.  With a clustered workload (whole
clusters inside 4-grid quadrants), quadrant-local chargers, and *keyed*
request/fault streams — every draw a pure function of ``(seed, entity)``
— re-partitioning the field from 2 shards to 4 must leave every
interior device's outcome (terminal state, quote, realized cost)
unchanged: its owner cell shrinks, but its spatial neighborhood, its
randomness, and its faults are identical.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan
from repro.geometry import Field, Point
from repro.service import (
    ServiceConfig,
    generate_clustered_requests,
    generate_keyed_requests,
)
from repro.shard import ShardedService, drive_sharded
from repro.wpt import Charger

FIELD = Field(100.0, 100.0)
CONFIG = ServiceConfig(epoch=60.0, window=120.0)
CENTERS = [(25.0, 25.0), (75.0, 25.0), (25.0, 75.0), (75.0, 75.0)]


def make_chargers():
    return [
        Charger(charger_id=f"c{k}", position=Point(x, y))
        for k, (x, y) in enumerate(CENTERS)
    ]


def make_stream(seed=2, n=20):
    # moving_rate=50 makes cross-quadrant travel (>= ~34 m) cost far more
    # than any coalition saving, so the workload genuinely decomposes: no
    # device would ever profitably group outside its own cluster.  That
    # is the stability *condition* (docs/SHARDING.md) — at the default
    # near-free movement, a merged cell groups across clusters and
    # realized costs legitimately differ between shard counts.
    return generate_clustered_requests(
        n, rate=0.1, seed=seed, centers=CENTERS, radius=8.0, field=FIELD,
        deadline_slack=2000.0, max_price_factor=1.5, moving_rate=50.0,
    )


def outcomes(n_shards, stream, plan):
    svc = ShardedService(
        make_chargers(), n_shards=n_shards, field=FIELD, halo=5.0,
        config=CONFIG,
    )
    drive_sharded(svc, stream, plan, advance_to=stream[-1].submitted_at + 300.0)
    out = {}
    for kernel in svc.kernels.values():
        for rid, record in kernel.requests.items():
            out[rid] = (record.state, record.quote, record.realized_cost)
    return out


class TestInteriorOutcomeStability:
    @pytest.mark.parametrize("fault_seed", [1, 5])
    def test_two_to_four_shards_same_outcomes(self, fault_seed):
        stream = make_stream()
        plan = FaultPlan.generate_keyed(
            fault_seed,
            requests=stream,
            cancel_prob=0.2,
            no_show_prob=0.1,
        )
        assert outcomes(2, stream, plan) == outcomes(4, stream, plan)

    def test_one_to_four_shards_same_outcomes_without_faults(self):
        stream = make_stream(seed=6)
        a = outcomes(1, stream, FaultPlan())
        b = outcomes(4, stream, FaultPlan())
        assert a == b


class TestKeyedStreamStability:
    def test_keyed_requests_are_prefix_stable(self):
        # Request k is a pure function of (seed, k): asking for more
        # requests never perturbs the ones already drawn.
        short = generate_keyed_requests(10, rate=0.2, seed=9, field=FIELD)
        long = generate_keyed_requests(25, rate=0.2, seed=9, field=FIELD)
        assert [r.to_dict() for r in short] == [r.to_dict() for r in long[:10]]

    def test_clustered_requests_stay_in_their_disc(self):
        stream = make_stream(seed=3, n=40)
        for k, req in enumerate(stream):
            cx, cy = CENTERS[k % len(CENTERS)]
            dx = req.device.position.x - cx
            dy = req.device.position.y - cy
            assert dx * dx + dy * dy <= 8.0**2 + 1e-9

    def test_keyed_fault_plan_restricts_cleanly(self):
        # The whole-field keyed plan, filtered to one shard's entities,
        # IS the plan generated for that shard alone — the property that
        # makes per-shard fault streams independent of the partition.
        stream = make_stream(seed=2)
        chargers = make_chargers()
        full = FaultPlan.generate_keyed(
            11,
            charger_ids=[c.charger_id for c in chargers],
            requests=stream,
            horizon=3000.0,
            outage_prob=0.6,
            cancel_prob=0.2,
            no_show_prob=0.1,
        )
        quadrant_requests = [
            r for k, r in enumerate(stream) if k % len(CENTERS) == 0
        ]
        sub = FaultPlan.generate_keyed(
            11,
            charger_ids=["c0"],
            requests=quadrant_requests,
            horizon=3000.0,
            outage_prob=0.6,
            cancel_prob=0.2,
            no_show_prob=0.1,
        )
        keep_requests = {r.request_id for r in quadrant_requests}
        filtered = [
            e for e in full
            if (e.kind in ("charger_down", "charger_up") and e.target == "c0")
            or (e.kind in ("cancel", "no_show") and e.target in keep_requests)
        ]
        assert sorted(filtered, key=lambda e: e.sort_key()) == (
            sorted(sub, key=lambda e: e.sort_key())
        )
