"""Tests for the statistics helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats import MeanCI, bootstrap_ci, mean_ci, paired_t_test


class TestMeanCI:
    def test_contains_mean_and_is_symmetric(self):
        ci = mean_ci([10.0, 12.0, 11.0, 13.0, 9.0])
        assert ci.low < ci.mean < ci.high
        assert ci.mean - ci.low == pytest.approx(ci.high - ci.mean)
        assert ci.n == 5

    def test_higher_confidence_is_wider(self):
        xs = [1.0, 2.0, 3.0, 4.0, 5.0]
        narrow = mean_ci(xs, confidence=0.8)
        wide = mean_ci(xs, confidence=0.99)
        assert wide.high - wide.low > narrow.high - narrow.low

    def test_zero_variance_collapses(self):
        ci = mean_ci([7.0, 7.0, 7.0])
        assert ci.low == ci.high == ci.mean == 7.0

    def test_coverage_on_gaussian_samples(self):
        # ~95% of 95% CIs should contain the true mean.
        rng = np.random.default_rng(0)
        hits = 0
        trials = 400
        for _ in range(trials):
            xs = rng.normal(5.0, 2.0, size=12)
            ci = mean_ci(xs)
            hits += ci.low <= 5.0 <= ci.high
        assert 0.90 <= hits / trials <= 0.99

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_ci([1.0])
        with pytest.raises(ValueError):
            mean_ci([1.0, 2.0], confidence=1.5)

    def test_str_rendering(self):
        text = str(mean_ci([1.0, 2.0, 3.0]))
        assert "[" in text and "95%" in text


class TestPairedTTest:
    def test_detects_consistent_improvement(self):
        baseline = [100.0, 105.0, 98.0, 102.0, 101.0, 99.0]
        candidate = [b - 10.0 + 0.5 * k for k, b in enumerate(baseline)]
        res = paired_t_test(baseline, candidate)
        assert res.mean_difference > 0
        assert res.significant_at_5pct
        assert res.n == 6

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")  # near-identical data
    def test_no_difference_not_significant(self):
        rng = np.random.default_rng(1)
        a = list(rng.normal(50, 5, size=10))
        b = [x + float(rng.normal(0, 0.01)) for x in a]
        res = paired_t_test(a, b)
        assert not res.significant_at_5pct or abs(res.mean_difference) < 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_t_test([1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            paired_t_test([1.0], [1.0])

    def test_field_trial_improvement_is_significant(self):
        from repro.core import ccsa, noncooperation
        from repro.sim import FieldTrialConfig, compare_field_trial

        res = compare_field_trial(
            {"ccsa": ccsa, "nca": noncooperation},
            FieldTrialConfig(rounds=6, seed=31),
        )
        test = paired_t_test(res["nca"].round_costs, res["ccsa"].round_costs)
        assert test.mean_difference > 0
        assert test.significant_at_5pct


class TestBootstrap:
    def test_brackets_the_mean(self):
        xs = [10.0, 11.0, 12.0, 13.0, 14.0, 15.0]
        lo, hi = bootstrap_ci(xs, resamples=500)
        assert lo < sum(xs) / len(xs) < hi

    def test_deterministic_for_seed(self):
        xs = [1.0, 5.0, 3.0, 8.0, 2.0]
        assert bootstrap_ci(xs, rng=7) == bootstrap_ci(xs, rng=7)

    def test_custom_statistic(self):
        xs = [1.0, 2.0, 3.0, 100.0]
        lo, hi = bootstrap_ci(xs, statistic=lambda s: float(np.median(s)), rng=2)
        assert lo <= 51.5 and hi >= 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=0.0)
