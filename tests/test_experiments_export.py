"""Tests for the Markdown results exporter and its CLI flag."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments import export_markdown, results_markdown


class TestResultsMarkdown:
    def test_document_structure(self):
        text = results_markdown({"table1": "row1\nrow2"}, trials=2)
        assert text.startswith("# CCS reproduction results")
        assert "## table1" in text
        assert "```text" in text and "row1" in text
        assert "--trials 2" in text
        assert "library version" in text

    def test_experiments_sorted(self):
        text = results_markdown({"fig9": "x", "fig5": "y"}, trials=1)
        assert text.index("## fig5") < text.index("## fig9")


class TestExportMarkdown:
    def test_writes_file_and_returns_results(self, tmp_path):
        path = tmp_path / "results.md"
        results = export_markdown(str(path), trials=1, only=["table1"])
        assert set(results) == {"table1"}
        content = path.read_text()
        assert "## table1" in content
        assert "Table 1" in content

    def test_unknown_ids_fail_before_running(self, tmp_path):
        path = tmp_path / "results.md"
        with pytest.raises(KeyError, match="unknown"):
            export_markdown(str(path), trials=1, only=["fig99"])
        assert not path.exists()


class TestCliExport:
    def test_export_flag_writes_report(self, tmp_path, capsys):
        path = tmp_path / "out.md"
        assert main(["table1", "--export", str(path)]) == 0
        assert "## table1" in path.read_text()
        assert "wrote" in capsys.readouterr().err
