"""Object-vs-array engine equivalence: the bit-identity contract.

The array engine (:mod:`repro.game.arraycore`) promises to be
*observationally indistinguishable* from the object engine — not "close",
identical: the same switch sequence, the same schedule, the same total
cost to the last bit, the same Zobrist hash.  Four layers enforce it:

1. **Golden bit-identity**: on every ``ccsga_golden.json`` case x both
   schemes, the two engines produce exactly equal schedules, switch and
   sweep counts, Nash certificates, and *exactly* equal traces (no
   tolerance — ``==`` on floats).
2. **Hypothesis end-to-end fuzz**: random workloads, schemes, and rules;
   both engines run CCSGA to convergence and must agree exactly.
3. **Lockstep state fuzz**: an :class:`~repro.game.arraycore.ArrayState`
   and a :class:`~repro.game.coalition.CoalitionStructure` are driven
   through the same random legal move sequence; after every move the
   cached totals, Zobrist hashes, canonical partitions, and each
   device's ``best_move`` must match bitwise, and both pass their own
   invariant audits.
4. **Engine-knob semantics**: resolution rules, the environment
   variable, unsupported-combination errors, and planner parity.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Device, EgalitarianSharing, ProportionalSharing, ShapleySharing, ccsga
from repro.core.ccsga import resolve_engine
from repro.errors import ConfigurationError
from repro.game import (
    ArrayState,
    CoalitionStructure,
    SelfishSwitch,
    SociallyAwareSwitch,
    StructureArrayView,
    engine_supported,
)
from repro.geometry import Point
from repro.io import instance_from_dict
from repro.service import IncrementalPlanner
from repro.workloads import quick_instance
from repro.wpt import Charger

FIXTURES = Path(__file__).parent / "fixtures"

SCHEMES = {
    "egalitarian": EgalitarianSharing(),
    "proportional": ProportionalSharing(),
}

RULES = [SociallyAwareSwitch(), SelfishSwitch()]


def load_fixture(name):
    with open(FIXTURES / f"{name}.json") as fh:
        return instance_from_dict(json.load(fh))


def _golden():
    with open(FIXTURES / "ccsga_golden.json") as fh:
        return json.load(fh)


GOLDEN = _golden()


def _instance_for(case_name):
    if case_name.startswith("quick_"):
        spec, _ = case_name.split("/")
        parts = dict((kv[0], int(kv[1:])) for kv in spec.split("_")[1:])
        return quick_instance(
            n_devices=parts["n"], n_chargers=parts["m"], seed=parts["s"], capacity=6
        )
    return load_fixture(case_name.split("/")[0])


def assert_results_bit_identical(obj, arr):
    """Exact (no-tolerance) equality of two CCSGA results."""
    assert obj.schedule.sessions == arr.schedule.sessions
    assert obj.switches == arr.switches
    assert obj.sweeps == arr.sweeps
    assert obj.nash_certified == arr.nash_certified
    # Bit-identity: == on floats, deliberately not pytest.approx.
    assert list(obj.trace.values) == list(arr.trace.values)


# --------------------------------------------------------------------- #
# 1. golden bit-identity


@pytest.mark.parametrize("case", sorted(GOLDEN))
class TestGoldenBitIdentity:
    def test_engines_bit_identical_on_golden_case(self, case):
        instance = _instance_for(case)
        scheme = SCHEMES[case.rsplit("/", 1)[1]]
        obj = ccsga(instance, scheme=scheme, certify=True, engine="object")
        arr = ccsga(instance, scheme=scheme, certify=True, engine="array")
        assert obj.engine == "object" and arr.engine == "array"
        assert_results_bit_identical(obj, arr)
        # And the array engine still matches the recorded golden outputs.
        expected = GOLDEN[case]
        got_schedule = sorted(
            [s.charger, sorted(s.members)] for s in arr.schedule.sessions
        )
        assert got_schedule == expected["schedule"]
        assert arr.switches == expected["switches"]


# --------------------------------------------------------------------- #
# 2. end-to-end hypothesis fuzz


class TestEndToEndEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=28),
        m=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=10_000),
        capacity=st.sampled_from([None, 2, 4, 8]),
        scheme_name=st.sampled_from(sorted(SCHEMES)),
        rule_idx=st.integers(min_value=0, max_value=1),
    )
    def test_engines_agree_exactly_on_random_workloads(
        self, n, m, seed, capacity, scheme_name, rule_idx
    ):
        instance = quick_instance(
            n_devices=n, n_chargers=m, seed=seed, capacity=capacity
        )
        scheme = SCHEMES[scheme_name]
        rule = RULES[rule_idx]
        try:
            obj = ccsga(instance, scheme=scheme, rule=rule, engine="object")
        except Exception as exc:  # selfish dynamics may legitimately cycle
            with pytest.raises(type(exc)):
                ccsga(instance, scheme=scheme, rule=rule, engine="array")
            return
        arr = ccsga(instance, scheme=scheme, rule=rule, engine="array")
        assert_results_bit_identical(obj, arr)

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=20),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    def test_warm_start_equivalence(self, n, seed):
        instance = quick_instance(n_devices=n, n_chargers=3, seed=seed, capacity=6)
        warm = ccsga(instance, certify=False, engine="object").schedule
        obj = ccsga(instance, warm_start=warm, engine="object")
        arr = ccsga(instance, warm_start=warm, engine="array")
        assert_results_bit_identical(obj, arr)

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=20),
        seed=st.integers(min_value=0, max_value=1_000),
        order_seed=st.integers(min_value=0, max_value=1_000),
    )
    def test_random_visit_order_equivalence(self, n, seed, order_seed):
        instance = quick_instance(n_devices=n, n_chargers=3, seed=seed)
        obj = ccsga(instance, rng=order_seed, engine="object")
        arr = ccsga(instance, rng=order_seed, engine="array")
        assert_results_bit_identical(obj, arr)


# --------------------------------------------------------------------- #
# 3. lockstep state fuzz


class TestLockstepState:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_states_match_bitwise_under_random_moves(self, data):
        n = data.draw(st.integers(min_value=2, max_value=16), label="n")
        m = data.draw(st.integers(min_value=1, max_value=4), label="m")
        seed = data.draw(st.integers(min_value=0, max_value=5_000), label="seed")
        capacity = data.draw(st.sampled_from([None, 3, 6]), label="capacity")
        scheme = SCHEMES[
            data.draw(st.sampled_from(sorted(SCHEMES)), label="scheme")
        ]
        instance = quick_instance(
            n_devices=n, n_chargers=m, seed=seed, capacity=capacity
        )
        obj = CoalitionStructure.singletons(instance, scheme)
        arr = ArrayState.singletons(instance, scheme)
        rule = data.draw(st.sampled_from(RULES), label="rule")
        for _ in range(data.draw(st.integers(min_value=1, max_value=25), label="moves")):
            device = data.draw(
                st.integers(min_value=0, max_value=n - 1), label="device"
            )
            # Both engines must propose the identical best move...
            obj_move = rule.best_move(obj, device)
            arr_move = arr.best_move(device, rule)
            assert obj_move == arr_move
            src = obj.coalition_of(device)
            options = [
                c.cid
                for c in obj.coalitions()
                if c is not src and instance.chargers[c.charger].admits(c.size + 1)
            ]
            targets = [(cid, None) for cid in options] + [
                (None, j)
                for j in range(m)
                if not (src.size == 1 and j == src.charger)
            ]
            if not targets:
                continue
            idx = data.draw(
                st.integers(min_value=0, max_value=len(targets) - 1), label="target"
            )
            target, charger = targets[idx]
            if charger is None:
                charger = obj._coalitions[target].charger
            obj.move(device, target, charger)
            arr.move(device, target, charger)
            # ...and land in bitwise-identical states after any legal move.
            assert arr.total_cost == obj.total_cost
            assert arr.zobrist_hash() == obj.zobrist_hash()
            assert arr.state_key() == obj.state_key()
            assert arr.n_coalitions == obj.n_coalitions
        obj.check_invariants()
        arr.check_invariants()
        assert arr.to_schedule("x").sessions == obj.to_schedule("x").sessions

    def test_array_state_rejects_illegal_moves_like_object(self):
        instance = quick_instance(n_devices=4, n_chargers=2, seed=3, capacity=1)
        scheme = EgalitarianSharing()
        obj = CoalitionStructure.singletons(instance, scheme)
        arr = ArrayState.singletons(instance, scheme)
        cid = next(iter(obj.coalitions())).cid
        member = next(iter(obj.coalition_of(0).members))
        with pytest.raises(ValueError):
            obj.move(member, obj.coalition_of(member).cid, 0)
        with pytest.raises(ValueError):
            arr.move(member, obj.coalition_of(member).cid, 0)
        # capacity=1: every join is inadmissible.
        other = next(i for i in range(4) if obj.coalition_of(i).cid != cid)
        with pytest.raises(ValueError):
            obj.move(other, cid, obj._coalitions[cid].charger)
        with pytest.raises(ValueError):
            arr.move(other, cid, obj._coalitions[cid].charger)
        with pytest.raises(KeyError):
            arr.move(0, 999_999, 0)

    def test_structure_view_matches_rule_best_move(self):
        instance = quick_instance(n_devices=18, n_chargers=4, seed=11, capacity=6)
        for scheme in SCHEMES.values():
            structure = CoalitionStructure.singletons(instance, scheme)
            view = StructureArrayView(structure)
            for rule in RULES:
                # Interleave scans and moves so the view's version-keyed
                # rebuild is exercised, not just the first build.
                for device in range(instance.n_devices):
                    expected = rule.best_move(structure, device)
                    assert view.best_move(device, rule) == expected
                    if expected is not None:
                        structure.move(device, expected.target, expected.charger)


# --------------------------------------------------------------------- #
# 4. engine knob semantics


class TestEngineKnob:
    def test_auto_picks_array_for_supported_combination(self):
        instance = quick_instance(n_devices=6, n_chargers=2, seed=0)
        assert engine_supported(instance, EgalitarianSharing(), SociallyAwareSwitch())
        result = ccsga(instance, engine="auto")
        assert result.engine == "array"

    def test_auto_falls_back_for_shapley(self):
        instance = quick_instance(n_devices=5, n_chargers=2, seed=1)
        scheme = ShapleySharing()
        assert not engine_supported(instance, scheme, SociallyAwareSwitch())
        result = ccsga(instance, scheme=scheme, engine="auto")
        assert result.engine == "object"

    def test_array_with_shapley_raises(self):
        instance = quick_instance(n_devices=5, n_chargers=2, seed=1)
        with pytest.raises(ConfigurationError):
            ccsga(instance, scheme=ShapleySharing(), engine="array")

    def test_unknown_engine_rejected(self):
        instance = quick_instance(n_devices=4, n_chargers=2, seed=0)
        with pytest.raises(ConfigurationError):
            ccsga(instance, engine="vectorized")

    def test_subclassed_rule_is_not_vectorized(self):
        class TweakedSwitch(SociallyAwareSwitch):
            pass

        instance = quick_instance(n_devices=4, n_chargers=2, seed=0)
        rule = TweakedSwitch()
        assert not engine_supported(instance, EgalitarianSharing(), rule)
        assert (
            resolve_engine("auto", instance, EgalitarianSharing(), rule) == "object"
        )

    def test_env_variable_selects_engine(self, monkeypatch):
        instance = quick_instance(n_devices=6, n_chargers=2, seed=0)
        monkeypatch.setenv("CCS_ENGINE", "object")
        assert ccsga(instance).engine == "object"
        monkeypatch.setenv("CCS_ENGINE", "array")
        assert ccsga(instance).engine == "array"
        monkeypatch.delenv("CCS_ENGINE")
        assert ccsga(instance).engine == "array"  # auto, supported

    def test_explicit_argument_beats_environment(self, monkeypatch):
        instance = quick_instance(n_devices=6, n_chargers=2, seed=0)
        monkeypatch.setenv("CCS_ENGINE", "array")
        assert ccsga(instance, engine="object").engine == "object"

    def test_env_array_is_advisory_not_strict(self, monkeypatch):
        """CCS_ENGINE=array falls back where unsupported; the argument raises."""
        instance = quick_instance(n_devices=5, n_chargers=2, seed=1)
        monkeypatch.setenv("CCS_ENGINE", "array")
        result = ccsga(instance, scheme=ShapleySharing())
        assert result.engine == "object"
        with pytest.raises(ConfigurationError):
            ccsga(instance, scheme=ShapleySharing(), engine="array")


# --------------------------------------------------------------------- #
# planner parity


def _drive_planner(engine):
    chargers = [
        Charger(charger_id="c0", position=Point(10.0, 10.0), capacity=6),
        Charger(charger_id="c1", position=Point(90.0, 90.0), capacity=6),
        Charger(charger_id="c2", position=Point(50.0, 50.0), capacity=6),
    ]
    planner = IncrementalPlanner(chargers, engine=engine)
    import numpy as np

    rng = np.random.default_rng(7)
    indices = []
    for k in range(18):
        dev = Device(
            device_id=f"d{k}",
            position=Point(float(rng.uniform(0, 100)), float(rng.uniform(0, 100))),
            demand=float(rng.uniform(10e3, 40e3)),
        )
        cost, _ = planner.quote(dev)
        indices.append(planner.add(dev, cost))
    # Fold in three epochs, with removals and a retirement between them.
    planner.fold(indices[:8])
    planner.remove(indices[2])
    planner.fold(indices[8:14])
    planner.retire(planner.live_cids()[0])
    planner.fold(indices[14:])
    planner.structure.check_invariants()
    snapshot = sorted(
        (c.charger, tuple(sorted(c.members)))
        for c in planner.structure.coalitions()
    )
    return planner, snapshot


class TestPlannerParity:
    def test_planner_engines_bit_identical(self):
        obj_planner, obj_snapshot = _drive_planner("object")
        arr_planner, arr_snapshot = _drive_planner("array")
        assert obj_planner.engine == "object" and arr_planner.engine == "array"
        assert arr_snapshot == obj_snapshot
        assert arr_planner.structure.total_cost == obj_planner.structure.total_cost
        assert (
            arr_planner.structure.zobrist_hash()
            == obj_planner.structure.zobrist_hash()
        )
        # Identical decisions imply identical work tallies.
        assert arr_planner.ops == obj_planner.ops


# --------------------------------------------------------------------- #
# tier-1 smoke: the array path stays exercised and fast


@pytest.mark.bench_smoke
def test_bench_smoke_engine_parity():
    """Both engines on one mid-size workload: exact agreement, every sweep."""
    instance = quick_instance(n_devices=120, n_chargers=8, seed=2026, capacity=6)
    for scheme in SCHEMES.values():
        obj = ccsga(instance, scheme=scheme, engine="object")
        arr = ccsga(instance, scheme=scheme, engine="array")
        assert_results_bit_identical(obj, arr)
        assert arr.engine == "array"
