"""Router tests: deterministic spatial routing and the quote ceiling.

Satellite properties pinned here:

- routing is a pure function of ``(request, partition, availability)`` —
  hypothesis drives random device positions and shard layouts and asserts
  two independently built routers agree route-for-route;
- an exact quote tie between candidate shards breaks toward the lower
  shard id (mirrored-charger construction);
- the admission quote remains a price ceiling after cross-shard
  admission: a border device admitted to a non-owner shard under churn
  is never charged more than it was quoted.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Device
from repro.errors import ServiceError
from repro.geometry import Field, Point
from repro.service import IncrementalPlanner, ServiceConfig, generate_requests
from repro.service.request import ChargingRequest, RequestState
from repro.shard import GridPartition, ShardedService, SpatialRouter
from repro.wpt import Charger

FIELD = Field(100.0, 100.0)


def make_request(rid, x, y, demand=20e3):
    return ChargingRequest(
        request_id=rid,
        device=Device(
            device_id=f"dev-{rid}", position=Point(x, y),
            demand=demand, moving_rate=0.05,
        ),
        submitted_at=0.0,
    )


def make_router(halo=10.0, planner_order=(0, 1, 2, 3)):
    """A 2x2 partition with one charger per cell, planners installed in
    *planner_order* — routing must not care about dict insertion order."""
    part = GridPartition(FIELD, 4, halo=halo)
    positions = {0: (25.0, 25.0), 1: (75.0, 25.0), 2: (25.0, 75.0), 3: (75.0, 75.0)}
    planners = {}
    for sid in planner_order:
        x, y = positions[sid]
        planners[sid] = IncrementalPlanner(
            [Charger(charger_id=f"c{sid}", position=Point(x, y))]
        )
    return SpatialRouter(part, planners)


class TestRoutingDeterminism:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        x=st.floats(0.0, 100.0, allow_nan=False),
        y=st.floats(0.0, 100.0, allow_nan=False),
        halo=st.floats(0.0, 25.0, allow_nan=False),
    )
    def test_two_fresh_routers_agree(self, x, y, halo):
        req = make_request("r0", x, y)
        assert make_router(halo).route(req) == make_router(halo).route(req)

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        x=st.floats(0.0, 100.0, allow_nan=False),
        y=st.floats(0.0, 100.0, allow_nan=False),
        order=st.permutations([0, 1, 2, 3]),
    )
    def test_planner_insertion_order_is_irrelevant(self, x, y, order):
        req = make_request("r0", x, y)
        assert make_router(planner_order=tuple(order)).route(req) == (
            make_router().route(req)
        )

    def test_route_is_sticky(self):
        router = make_router()
        req = make_request("r0", 50.0, 50.0)
        sid = router.route(req)
        # Degrade the winner; the sticky assignment must hold anyway.
        router.planners[sid].fail_charger(0)
        assert router.route(req) == sid
        assert router.shard_of("r0") == sid
        assert router.shard_of("never-seen") is None

    def test_interior_device_never_quotes(self):
        router = make_router(halo=5.0)
        # Deep inside cell 0 — one candidate, so the route must not
        # depend on any planner's availability.
        for planner in router.planners.values():
            planner.fail_charger(0)
        assert router.route(make_request("r0", 10.0, 10.0)) == 0


class TestTieBreaks:
    def test_exact_tie_goes_to_lower_shard(self):
        # Chargers mirrored about the x=50 midline; a device on the
        # midline is equidistant, identical tariffs → identical quotes.
        router = make_router(halo=10.0)
        req = make_request("mid", 50.0, 25.0)
        q0 = router.planners[0].quote(req.device)[0]
        q1 = router.planners[1].quote(req.device)[0]
        assert q0 == q1
        assert router.route(req) == 0

    def test_cheaper_candidate_wins_regardless_of_id(self):
        router = make_router(halo=10.0)
        req = make_request("near1", 58.0, 25.0)  # border, closer to c1
        assert router.route(req) == 1

    def test_all_candidates_down_routes_to_lowest(self):
        router = make_router(halo=10.0)
        router.planners[0].fail_charger(0)
        router.planners[1].fail_charger(0)
        req = make_request("down", 50.0, 25.0)
        assert router.route(req) == 0  # that kernel rejects charger_failed

    def test_empty_router_rejected(self):
        with pytest.raises(ServiceError):
            SpatialRouter(GridPartition(FIELD, 4), {})


class TestQuoteCeilingAcrossShards:
    def test_cross_shard_admission_respects_quote_ceiling(self):
        # Border devices under charger churn: whatever shard a device is
        # admitted to, its realized cost never exceeds its quote (plus
        # the planner tolerance) — the paper's price-ceiling contract,
        # now across the router.
        chargers = [
            Charger(charger_id="c0", position=Point(25.0, 25.0)),
            Charger(charger_id="c1", position=Point(75.0, 25.0)),
            Charger(charger_id="c2", position=Point(25.0, 75.0)),
            Charger(charger_id="c3", position=Point(75.0, 75.0)),
        ]
        svc = ShardedService(
            chargers, n_shards=4, field=FIELD, halo=30.0,
            config=ServiceConfig(epoch=60.0, window=120.0),
        )
        reqs = generate_requests(
            12, rate=0.05, deadline_slack=4000.0, max_price_factor=1.5, rng=7
        )
        for k, req in enumerate(reqs):
            svc.submit(req)
            if k == 3:
                svc.fail_charger("c1")
            if k == 6:
                svc.fail_charger("c3")
            if k == 9:
                svc.restore_charger("c1")
        svc.drain()

        cross_shard = 0
        for sid, kernel in svc.kernels.items():
            tol = kernel.planner.tol
            for rid, record in kernel.requests.items():
                assert record.state in RequestState.TERMINAL
                if record.realized_cost is not None and record.quote is not None:
                    assert record.realized_cost <= record.quote + tol, (
                        f"{rid} on shard {sid} charged {record.realized_cost} "
                        f"over quote {record.quote}"
                    )
                owner = svc.partition.cell_of(record.request.device.position)
                if owner != sid:
                    cross_shard += 1
        # The wide halo must actually have exercised cross-shard admission.
        assert cross_shard > 0
