"""Unit tests for the discrete-event engine, stations, nodes, and noise."""

from __future__ import annotations

import pytest

from repro.core import Device
from repro.energy import Battery, LocomotionModel
from repro.errors import ConfigurationError, SimulationError
from repro.geometry import Point
from repro.sim import ChargerStation, Engine, NoiseModel, SimNode
from repro.wpt import Charger, LinearTariff


class TestEngine:
    def test_events_fire_in_time_order(self):
        e = Engine()
        log = []
        e.schedule(5.0, lambda: log.append(("b", e.now)))
        e.schedule(1.0, lambda: log.append(("a", e.now)))
        e.schedule(9.0, lambda: log.append(("c", e.now)))
        e.run()
        assert log == [("a", 1.0), ("b", 5.0), ("c", 9.0)]
        assert e.events_fired == 3

    def test_same_time_fifo(self):
        e = Engine()
        log = []
        for tag in "abc":
            e.schedule(2.0, lambda t=tag: log.append(t))
        e.run()
        assert log == ["a", "b", "c"]

    def test_nested_scheduling(self):
        e = Engine()
        log = []

        def first():
            log.append(e.now)
            e.schedule(3.0, lambda: log.append(e.now))

        e.schedule(1.0, first)
        e.run()
        assert log == [1.0, 4.0]

    def test_run_until_pauses_time(self):
        e = Engine()
        log = []
        e.schedule(10.0, lambda: log.append("late"))
        e.run(until=5.0)
        assert log == [] and e.now == 5.0
        e.run()
        assert log == ["late"] and e.now == 10.0

    def test_run_until_with_empty_queue_advances_clock(self):
        e = Engine()
        e.run(until=7.0)
        assert e.now == 7.0

    def test_cancel(self):
        e = Engine()
        log = []
        h = e.schedule(1.0, lambda: log.append("x"))
        e.cancel(h)
        assert h.cancelled
        e.run()
        assert log == []

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        e = Engine()
        log = []
        e.schedule_at(4.0, lambda: log.append(e.now))
        e.run()
        assert log == [4.0]

    def test_runaway_chain_detected(self):
        e = Engine()

        def loop():
            e.schedule(0.0, loop)

        e.schedule(0.0, loop)
        with pytest.raises(SimulationError, match="runaway"):
            e.run(max_events=100)


class TestChargerStation:
    def make_station(self, engine):
        charger = Charger("c", Point(0, 0), tariff=LinearTariff(base=1.0, unit=0.1))
        return ChargerStation(charger=charger, engine=engine)

    def test_sessions_run_fifo_one_at_a_time(self):
        e = Engine()
        st = self.make_station(e)
        log = []

        def session(tag, dur):
            def start():
                log.append((tag, "start", e.now))
                return dur, lambda: log.append((tag, "end", e.now))

            return start

        st.submit(session("s1", 10.0))
        st.submit(session("s2", 5.0))
        e.run()
        assert log == [
            ("s1", "start", 0.0),
            ("s1", "end", 10.0),
            ("s2", "start", 10.0),
            ("s2", "end", 15.0),
        ]
        assert st.busy_seconds == 15.0
        assert not st.busy

    def test_ledger(self):
        e = Engine()
        st = self.make_station(e)
        st.record_session(emitted=100.0, revenue=11.0)
        st.record_session(emitted=50.0, revenue=6.0)
        assert st.sessions_served == 2
        assert st.energy_emitted == 150.0
        assert st.revenue == 17.0

    def test_negative_duration_rejected(self):
        # The pad is free, so the bad session starts synchronously on submit.
        e = Engine()
        st = self.make_station(e)
        with pytest.raises(SimulationError):
            st.submit(lambda: (-1.0, lambda: None))


class TestSimNode:
    def make_node(self, level=50.0, capacity=100.0):
        device = Device("n", Point(0, 0), demand=10.0, moving_rate=2.0, speed=1.0)
        return SimNode(
            device=device,
            battery=Battery(capacity=capacity, level=level),
            locomotion=LocomotionModel(1.0),
        )

    def test_walk_accounts_cost_energy_position(self):
        n = self.make_node()
        n.walk(Point(3, 4), realized_length=6.0)
        assert n.position == Point(3, 4)
        assert n.distance_walked == 6.0
        assert n.moving_cost_paid == 12.0
        assert n.battery.level == 44.0
        assert not n.died

    def test_walk_death_on_depletion(self):
        n = self.make_node(level=2.0)
        n.walk(Point(10, 0), realized_length=10.0)
        assert n.died
        assert n.battery.level == 0.0

    def test_receive_charge(self):
        n = self.make_node()
        n.receive_charge(energy=20.0, billed_share=3.5)
        assert n.energy_received == 20.0
        assert n.charging_cost_paid == 3.5
        assert n.sessions_attended == 1
        assert n.comprehensive_cost == 3.5

    def test_negative_inputs_rejected(self):
        n = self.make_node()
        with pytest.raises(SimulationError):
            n.walk(Point(0, 0), realized_length=-1.0)
        with pytest.raises(SimulationError):
            n.receive_charge(-1.0, 0.0)


class TestNoiseModel:
    def test_noiseless_is_identity(self):
        nm = NoiseModel.noiseless()
        assert nm.realized_efficiency(0.8) == 0.8
        assert nm.metered_energy(100.0) == 100.0
        assert nm.realized_path(42.0) == 42.0

    def test_efficiency_clipped_to_unit(self):
        nm = NoiseModel(efficiency_sigma=10.0, seed=0)
        for _ in range(50):
            assert 0.0 < nm.realized_efficiency(0.9) <= 1.0

    def test_paths_only_stretch(self):
        nm = NoiseModel(travel_sigma=0.5, seed=1)
        for _ in range(50):
            assert nm.realized_path(10.0) >= 10.0

    def test_keyed_draws_are_deterministic(self):
        nm = NoiseModel(seed=5)
        a = nm.keyed("travel", 3, "node1").realized_path(10.0)
        b = nm.keyed("travel", 3, "node1").realized_path(10.0)
        c = nm.keyed("travel", 3, "node2").realized_path(10.0)
        assert a == b
        assert a != c

    def test_keyed_requires_integer_seed(self):
        import numpy as np

        nm = NoiseModel(seed=np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            nm.keyed("x")

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            NoiseModel(efficiency_sigma=-0.1)
