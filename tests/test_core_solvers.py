"""Unit and cross-check tests for CCSA, CCSGA, OPT, and the baselines."""

from __future__ import annotations

import pytest

from repro.core import (
    EgalitarianSharing,
    ProportionalSharing,
    ccsa,
    ccsga,
    comprehensive_cost,
    demand_greedy,
    nearest_charger,
    noncooperation,
    optimal_bell,
    optimal_schedule,
    random_grouping,
    validate_schedule,
)
from repro.errors import ConvergenceError
from repro.game import SelfishSwitch
from repro.workloads import quick_instance
from repro.core import CCSInstance, Device
from repro.geometry import Point
from repro.wpt import Charger, PowerLawTariff

ALL_SOLVERS = {
    "ccsa": ccsa,
    "ccsga": lambda inst: ccsga(inst).schedule,
    "noncoop": noncooperation,
    "nearest": nearest_charger,
    "random": lambda inst: random_grouping(inst, rng=0),
    "demand_greedy": demand_greedy,
    "optimal": optimal_schedule,
}


@pytest.mark.parametrize("name,solver", ALL_SOLVERS.items())
class TestAllSolversFeasible:
    def test_feasible_on_tiny(self, tiny_instance, name, solver):
        validate_schedule(solver(tiny_instance), tiny_instance)

    def test_feasible_on_random(self, random_instance, name, solver):
        validate_schedule(solver(random_instance), random_instance)

    def test_deterministic(self, random_instance, name, solver):
        a = solver(random_instance)
        b = solver(random_instance)
        assert a.canonical() == b.canonical()


class TestCCSA:
    def test_groups_natural_pairs(self, tiny_instance):
        # d0/d1 belong at charger A, d2/d3 at B; CCSA must find those pairs.
        sched = ccsa(tiny_instance)
        assert sched.canonical() == (
            (0, (0, 1)),
            (1, (2, 3)),
        )

    def test_never_worse_than_noncooperation(self):
        for seed in range(10):
            inst = quick_instance(n_devices=14, n_chargers=3, seed=seed)
            c_ccsa = comprehensive_cost(ccsa(inst), inst)
            c_nca = comprehensive_cost(noncooperation(inst), inst)
            assert c_ccsa <= c_nca + 1e-9

    def test_metadata_records_rounds(self, random_instance):
        sched = ccsa(random_instance)
        assert sched.metadata["rounds"] >= 1
        oracle_total = sum(
            v for k, v in sched.metadata.items() if k.startswith("oracle_")
        )
        assert oracle_total == sched.metadata["rounds"]

    @pytest.mark.parametrize("method", ["exhaustive", "sfm", "prefix", "auto"])
    def test_all_oracle_methods_produce_feasible_schedules(self, random_instance, method):
        sched = ccsa(random_instance, method=method)
        validate_schedule(sched, random_instance)

    def test_sfm_matches_exhaustive_on_small(self, tiny_instance):
        a = comprehensive_cost(ccsa(tiny_instance, method="exhaustive"), tiny_instance)
        b = comprehensive_cost(ccsa(tiny_instance, method="sfm"), tiny_instance)
        assert a == pytest.approx(b)

    def test_close_to_optimal_on_small_instances(self):
        # The abstract's 7.3%-gap claim, checked loosely per instance.
        for seed in range(8):
            inst = quick_instance(n_devices=9, n_chargers=3, seed=seed, capacity=5)
            c_opt = comprehensive_cost(optimal_schedule(inst), inst)
            c_ccsa = comprehensive_cost(ccsa(inst), inst)
            assert c_opt <= c_ccsa + 1e-9
            assert c_ccsa <= 1.3 * c_opt


class TestCCSGA:
    def test_converges_and_certifies_nash(self, random_instance):
        res = ccsga(random_instance)
        assert res.nash_certified
        assert res.sweeps >= 1

    def test_potential_strictly_decreasing(self, random_instance):
        res = ccsga(random_instance)
        assert res.trace.is_strictly_decreasing()
        assert res.trace.initial >= res.trace.final

    def test_starts_from_noncooperation(self, random_instance):
        res = ccsga(random_instance)
        nca_cost = comprehensive_cost(noncooperation(random_instance), random_instance)
        assert res.trace.initial == pytest.approx(nca_cost)

    def test_never_worse_than_noncooperation(self):
        for seed in range(10):
            inst = quick_instance(n_devices=16, n_chargers=4, seed=seed)
            res = ccsga(inst)
            c_nca = comprehensive_cost(noncooperation(inst), inst)
            assert comprehensive_cost(res.schedule, inst) <= c_nca + 1e-9

    def test_warm_start_from_ccsa_never_hurts(self, random_instance):
        warm = ccsga(random_instance, warm_start=ccsa(random_instance))
        c_warm = comprehensive_cost(warm.schedule, random_instance)
        c_ccsa = comprehensive_cost(ccsa(random_instance), random_instance)
        assert c_warm <= c_ccsa + 1e-9

    @pytest.mark.parametrize("scheme", [EgalitarianSharing(), ProportionalSharing()])
    def test_both_paper_schemes_converge(self, random_instance, scheme):
        res = ccsga(random_instance, scheme=scheme)
        assert res.nash_certified

    def test_selfish_rule_runs_or_reports_cycle(self, random_instance):
        # The selfish dynamic has no potential guarantee: either it converges
        # or the driver must detect the cycle — never loop forever.
        try:
            res = ccsga(random_instance, rule=SelfishSwitch())
            validate_schedule(res.schedule, random_instance)
        except ConvergenceError as e:
            assert e.iterations > 0

    def test_metadata(self, random_instance):
        res = ccsga(random_instance)
        assert res.schedule.metadata["switches"] == res.switches
        assert res.schedule.metadata["nash_certified"] == 1.0


class TestOptimal:
    def test_dp_matches_bell_enumeration(self):
        for seed in range(6):
            inst = quick_instance(n_devices=7, n_chargers=3, seed=seed, capacity=4)
            c_dp = comprehensive_cost(optimal_schedule(inst), inst)
            c_bell = comprehensive_cost(optimal_bell(inst), inst)
            assert c_dp == pytest.approx(c_bell)

    def test_lower_bounds_every_solver(self, random_instance):
        c_opt = comprehensive_cost(optimal_schedule(random_instance), random_instance)
        for name, solver in ALL_SOLVERS.items():
            c = comprehensive_cost(solver(random_instance), random_instance)
            assert c_opt <= c + 1e-9, name

    def test_size_guards(self):
        inst = quick_instance(n_devices=20, n_chargers=3, seed=0)
        with pytest.raises(ValueError):
            optimal_schedule(inst, max_devices=18)
        with pytest.raises(ValueError):
            optimal_bell(inst)

    def test_infeasible_capacity_detected(self):
        # One charger with capacity 1 serving 3 devices is *feasible* via
        # three sessions; infeasibility can't come from session capacity
        # alone.  Verify the solver handles tight capacity correctly instead.
        devices = [Device(f"d{i}", Point(float(i), 0.0), demand=10.0) for i in range(3)]
        charger = Charger(
            "c", Point(0, 0), tariff=PowerLawTariff(base=1.0, unit=0.1), capacity=1
        )
        inst = CCSInstance(devices=devices, chargers=[charger])
        sched = optimal_schedule(inst)
        assert sched.n_sessions == 3


class TestBaselines:
    def test_noncooperation_all_singletons(self, random_instance):
        sched = noncooperation(random_instance)
        assert all(s.size == 1 for s in sched.sessions)

    def test_noncooperation_picks_cheapest_charger(self, tiny_instance):
        sched = noncooperation(tiny_instance)
        for s in sched.sessions:
            (i,) = s.members
            best = min(
                range(tiny_instance.n_chargers),
                key=lambda j: tiny_instance.group_cost([i], j),
            )
            assert tiny_instance.group_cost([i], s.charger) == pytest.approx(
                tiny_instance.group_cost([i], best)
            )

    def test_nearest_picks_nearest(self, tiny_instance):
        sched = nearest_charger(tiny_instance)
        for s in sched.sessions:
            (i,) = s.members
            dists = [
                tiny_instance.distance(i, j) for j in range(tiny_instance.n_chargers)
            ]
            assert tiny_instance.distance(i, s.charger) == pytest.approx(min(dists))

    def test_noncooperation_upper_bounds_nearest_cost_relation(self, random_instance):
        # Noncooperation optimizes cost, nearest optimizes distance: NCA <= nearest.
        c_nca = comprehensive_cost(noncooperation(random_instance), random_instance)
        c_near = comprehensive_cost(nearest_charger(random_instance), random_instance)
        assert c_nca <= c_near + 1e-9

    def test_random_grouping_seeded(self, random_instance):
        a = random_grouping(random_instance, rng=7)
        b = random_grouping(random_instance, rng=7)
        assert a.canonical() == b.canonical()

    def test_demand_greedy_respects_capacity(self):
        inst = quick_instance(n_devices=15, n_chargers=2, seed=1, capacity=3)
        sched = demand_greedy(inst)
        validate_schedule(sched, inst)
        assert max(s.size for s in sched.sessions) <= 3


class TestCCSAPruning:
    def test_pruned_schedule_feasible(self):
        inst = quick_instance(n_devices=30, n_chargers=4, seed=5, capacity=6)
        sched = ccsa(inst, max_candidates=10)
        validate_schedule(sched, inst)

    def test_pruned_cost_close_to_full(self):
        inst = quick_instance(n_devices=30, n_chargers=4, seed=5, capacity=6)
        full = comprehensive_cost(ccsa(inst), inst)
        pruned = comprehensive_cost(ccsa(inst, max_candidates=12), inst)
        assert pruned <= 1.1 * full

    def test_generous_budget_matches_full(self):
        inst = quick_instance(n_devices=12, n_chargers=3, seed=6, capacity=5)
        full = ccsa(inst)
        pruned = ccsa(inst, max_candidates=12)
        assert comprehensive_cost(pruned, inst) == pytest.approx(
            comprehensive_cost(full, inst)
        )

    def test_budget_one_still_covers_everyone(self):
        inst = quick_instance(n_devices=10, n_chargers=3, seed=7, capacity=5)
        sched = ccsa(inst, max_candidates=1)
        validate_schedule(sched, inst)

    def test_invalid_budget_rejected(self, random_instance):
        with pytest.raises(ValueError):
            ccsa(random_instance, max_candidates=0)
