"""Sharded replay over the executor: serial == parallel == live facade."""

from __future__ import annotations

import pytest

from repro.experiments.exec import ParallelExecutor, SerialExecutor
from repro.faults import FaultPlan
from repro.geometry import Field, Point
from repro.service import ServiceConfig, generate_requests
from repro.shard import (
    GridPartition,
    ShardedService,
    drive_sharded,
    partition_timeline,
    replay_sharded,
)
from repro.wpt import Charger

FIELD = Field(100.0, 100.0)
CONFIG = ServiceConfig(epoch=60.0, window=120.0)


def make_chargers():
    return [
        Charger(charger_id="c0", position=Point(25.0, 25.0)),
        Charger(charger_id="c1", position=Point(75.0, 25.0)),
        Charger(charger_id="c2", position=Point(25.0, 75.0)),
        Charger(charger_id="c3", position=Point(75.0, 75.0)),
    ]


def make_stream(n=20, seed=5):
    return generate_requests(
        n, rate=0.2, deadline_slack=900.0, max_price_factor=1.3, rng=seed
    )


def make_plan(stream, seed=9):
    return FaultPlan.generate(
        seed,
        charger_ids=[c.charger_id for c in make_chargers()],
        requests=stream,
        outage_prob=0.6,
        cancel_prob=0.15,
        no_show_prob=0.05,
    )


class TestPartitionTimeline:
    def test_every_submission_lands_exactly_once(self):
        stream = make_stream()
        part = GridPartition(FIELD, 4, halo=10.0)
        per_shard, assignment = partition_timeline(make_chargers(), stream, part)
        submitted = [
            item["request"]["id"]
            for items in per_shard.values()
            for item in items
            if item["op"] == "submit"
        ]
        assert sorted(submitted) == sorted(r.request_id for r in stream)
        assert set(assignment) == {r.request_id for r in stream}

    def test_fault_events_follow_ownership(self):
        stream = make_stream()
        plan = make_plan(stream)
        part = GridPartition(FIELD, 4, halo=10.0)
        per_shard, assignment = partition_timeline(
            make_chargers(), stream, part, plan=plan
        )
        for sid, items in per_shard.items():
            for item in items:
                if item["op"] != "fault":
                    continue
                event = item["event"]
                if event["kind"] in ("charger_down", "charger_up"):
                    assert event["target"] == f"c{sid}"
                else:
                    assert assignment[event["target"]] == sid


class TestExecutorEquivalence:
    @pytest.mark.parametrize("halo", [0.0, 15.0])
    def test_serial_equals_parallel_byte_identical(self, tmp_path, halo):
        stream = make_stream()
        plan = make_plan(stream)
        kwargs = dict(
            n_shards=4, field=FIELD, halo=halo, plan=plan, config=CONFIG,
            advance_to=stream[-1].submitted_at + 300.0,
        )
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial_dir.mkdir()
        parallel_dir.mkdir()
        serial = replay_sharded(
            make_chargers(), stream, executor=SerialExecutor(),
            workdir=str(serial_dir), **kwargs
        )
        parallel = replay_sharded(
            make_chargers(), stream, executor=ParallelExecutor(jobs=2),
            workdir=str(parallel_dir), **kwargs
        )
        assert serial["schedule"] == parallel["schedule"]
        assert serial["metrics"] == parallel["metrics"]
        assert serial["counts"] == parallel["counts"]
        for sid in serial["shards"]:
            assert serial["shards"][sid]["journal"] == (
                parallel["shards"][sid]["journal"]
            )

    def test_replay_matches_live_facade(self):
        stream = make_stream()
        plan = make_plan(stream)
        advance_to = stream[-1].submitted_at + 300.0

        svc = ShardedService(
            make_chargers(), n_shards=4, field=FIELD, halo=15.0, config=CONFIG
        )
        drive_sharded(svc, stream, plan, advance_to=advance_to)

        replayed = replay_sharded(
            make_chargers(), stream, n_shards=4, field=FIELD, halo=15.0,
            plan=plan, config=CONFIG, advance_to=advance_to,
        )
        assert replayed["counts"] == svc.counts()
        assert replayed["schedule"] == svc.final_schedule()
        assert replayed["metrics"] == svc.metrics_snapshot()
        assert replayed["assignment"] == svc.router.assignment
