"""Tests for the charger-placement planning extension."""

from __future__ import annotations

import pytest

from repro.core import CCSInstance, Device, ccsga, comprehensive_cost
from repro.errors import ConfigurationError
from repro.geometry import Field, Point, cluster_deployment
from repro.planning import (
    candidate_sites,
    greedy_placement,
    kmeans_placement,
    random_placement,
)
from repro.wpt import Charger, PowerLawTariff

FIELD = Field.square(300.0)
PROTO = Charger(
    "proto", Point(0, 0),
    tariff=PowerLawTariff(base=30.0, unit=2e-3, exponent=0.9),
    efficiency=0.8, capacity=6,
)


@pytest.fixture
def devices():
    pts = cluster_deployment(FIELD, 18, n_clusters=3, rng=4)
    return [
        Device(f"d{i}", p, demand=20e3, moving_rate=0.05) for i, p in enumerate(pts)
    ]


def deployment_cost(devices, chargers):
    inst = CCSInstance(devices=devices, chargers=list(chargers))
    return comprehensive_cost(ccsga(inst, certify=False).schedule, inst)


class TestCandidateSites:
    def test_grid_size_and_containment(self):
        sites = candidate_sites(FIELD, grid_side=4)
        assert len(sites) == 16
        assert all(FIELD.contains(p) for p in sites)

    def test_invalid_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            candidate_sites(FIELD, grid_side=0)


class TestGreedyPlacement:
    def test_trajectory_nonincreasing(self, devices):
        result = greedy_placement(devices, candidate_sites(FIELD, 4), k=3, prototype=PROTO)
        traj = list(result.cost_trajectory)
        assert traj == sorted(traj, reverse=True)
        assert len(result.chargers) == 3

    def test_charger_ids_unique_and_positions_from_sites(self, devices):
        sites = candidate_sites(FIELD, 4)
        result = greedy_placement(devices, sites, k=3, prototype=PROTO)
        ids = [c.charger_id for c in result.chargers]
        assert len(set(ids)) == 3
        assert all(c.position in sites for c in result.chargers)

    def test_beats_random_placement(self, devices):
        greedy = greedy_placement(devices, candidate_sites(FIELD, 4), k=3, prototype=PROTO)
        rand_costs = [
            deployment_cost(devices, random_placement(FIELD, 3, PROTO, rng=s))
            for s in range(3)
        ]
        assert greedy.final_cost <= min(rand_costs) + 1e-6

    def test_custom_evaluator(self, devices):
        # A distance-only evaluator turns greedy into plain facility location.
        def nearest_dist_cost(instance):
            return sum(
                min(instance.distance(i, j) for j in range(instance.n_chargers))
                for i in range(instance.n_devices)
            )

        result = greedy_placement(
            devices, candidate_sites(FIELD, 4), k=2, prototype=PROTO,
            evaluator=nearest_dist_cost,
        )
        assert len(result.chargers) == 2

    def test_validation(self, devices):
        sites = candidate_sites(FIELD, 2)
        with pytest.raises(ConfigurationError):
            greedy_placement(devices, sites, k=0, prototype=PROTO)
        with pytest.raises(ConfigurationError):
            greedy_placement(devices, sites, k=5, prototype=PROTO)


class TestKMeansPlacement:
    def test_centers_near_clusters(self, devices):
        chargers = kmeans_placement(devices, 3, PROTO, rng=1)
        assert len(chargers) == 3
        # Every device should be within a cluster-scale distance of a pad.
        for d in devices:
            nearest = min(d.position.distance_to(c.position) for c in chargers)
            assert nearest < 150.0

    def test_deterministic_for_seed(self, devices):
        a = kmeans_placement(devices, 3, PROTO, rng=7)
        b = kmeans_placement(devices, 3, PROTO, rng=7)
        assert [c.position for c in a] == [c.position for c in b]

    def test_k_equal_n_degenerates_to_devices(self, devices):
        few = devices[:4]
        chargers = kmeans_placement(few, 4, PROTO, rng=0)
        placed = {c.position for c in chargers}
        assert placed == {d.position for d in few}

    def test_validation(self, devices):
        with pytest.raises(ConfigurationError):
            kmeans_placement(devices, 0, PROTO)
        with pytest.raises(ConfigurationError):
            kmeans_placement(devices[:2], 5, PROTO)


class TestRandomPlacement:
    def test_inside_field_and_seeded(self):
        a = random_placement(FIELD, 4, PROTO, rng=3)
        b = random_placement(FIELD, 4, PROTO, rng=3)
        assert [c.position for c in a] == [c.position for c in b]
        assert all(FIELD.contains(c.position) for c in a)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            random_placement(FIELD, 0, PROTO)


class TestPlacementQuality:
    def test_more_pads_never_hurt_greedy(self, devices):
        sites = candidate_sites(FIELD, 4)
        k2 = greedy_placement(devices, sites, k=2, prototype=PROTO)
        k4 = greedy_placement(devices, sites, k=4, prototype=PROTO)
        assert k4.final_cost <= k2.final_cost + 1e-6

    def test_cooperative_evaluator_matters(self, devices):
        # The default evaluator schedules cooperatively; its chosen pads
        # must be at least as good (under the cooperative objective) as
        # pads chosen by pure distance.
        sites = candidate_sites(FIELD, 4)
        coop = greedy_placement(devices, sites, k=3, prototype=PROTO)

        def distance_only(instance):
            return sum(
                min(instance.distance(i, j) for j in range(instance.n_chargers))
                for i in range(instance.n_devices)
            )

        geo = greedy_placement(devices, sites, k=3, prototype=PROTO, evaluator=distance_only)
        assert coop.final_cost <= deployment_cost(devices, geo.chargers) + 1e-6
