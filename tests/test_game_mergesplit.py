"""Tests for the merge-and-split coalition dynamics (extension)."""

from __future__ import annotations

import pytest

from repro.core import (
    EgalitarianSharing,
    ProportionalSharing,
    ccsa,
    comprehensive_cost,
    noncooperation,
    validate_schedule,
)
from repro.game import merge_and_split
from repro.workloads import quick_instance


@pytest.fixture
def inst():
    return quick_instance(n_devices=12, n_chargers=3, seed=33, capacity=6)


class TestMergeAndSplit:
    def test_reaches_stable_feasible_partition(self, inst):
        res = merge_and_split(inst)
        assert res.stable
        validate_schedule(res.schedule, inst)
        assert res.schedule.solver == "merge-split"

    def test_never_worse_than_noncooperation(self):
        for seed in range(6):
            inst = quick_instance(n_devices=10, n_chargers=3, seed=seed, capacity=5)
            res = merge_and_split(inst)
            nca = comprehensive_cost(noncooperation(inst), inst)
            assert res.total_cost <= nca + 1e-9

    def test_total_cost_matches_schedule(self, inst):
        res = merge_and_split(inst)
        assert res.total_cost == pytest.approx(
            comprehensive_cost(res.schedule, inst)
        )

    def test_actually_merges_on_cooperative_instances(self, inst):
        res = merge_and_split(inst)
        assert res.merges > 0
        assert any(s.size > 1 for s in res.schedule.sessions)

    def test_metadata_records_operations(self, inst):
        res = merge_and_split(inst)
        assert res.schedule.metadata["merges"] == res.merges
        assert res.schedule.metadata["splits"] == res.splits

    def test_warm_start_from_ccsa(self, inst):
        start = ccsa(inst)
        res = merge_and_split(inst, start=start)
        assert res.stable
        # Pareto operations never raise total cost above the start state.
        assert res.total_cost <= comprehensive_cost(start, inst) + 1e-9

    def test_split_can_fire(self):
        # Start from one giant (bad) coalition: splitting must help.
        from repro.core import Schedule, Session

        inst = quick_instance(n_devices=8, n_chargers=3, seed=2, capacity=None)
        blob = Schedule([Session(0, frozenset(range(8)))])
        res = merge_and_split(inst, start=blob, max_split_search=8)
        assert res.stable
        # Either it split, or the blob was genuinely Pareto-stable — in
        # which case cost must already match the blob's.
        if res.splits == 0:
            assert res.total_cost == pytest.approx(
                comprehensive_cost(blob, inst)
            )

    @pytest.mark.parametrize(
        "scheme", [EgalitarianSharing(), ProportionalSharing()], ids=lambda s: s.name
    )
    def test_both_paper_schemes_converge(self, inst, scheme):
        res = merge_and_split(inst, scheme=scheme)
        assert res.stable

    def test_deterministic(self, inst):
        a = merge_and_split(inst)
        b = merge_and_split(inst)
        assert a.schedule.canonical() == b.schedule.canonical()

    def test_comparable_to_ccsga(self, inst):
        # Both dynamics land in the same cost ballpark (within 25%).
        from repro.core import ccsga

        ms = merge_and_split(inst).total_cost
        ga = comprehensive_cost(ccsga(inst).schedule, inst)
        assert ms <= 1.25 * ga
        assert ga <= 1.25 * ms

    def test_budget_exhaustion_reported_honestly(self, inst):
        res = merge_and_split(inst, max_rounds=0)
        # Zero rounds: nothing ran; must report unstable, never pretend.
        assert not res.stable
