"""Unit tests for the energy substrate."""

from __future__ import annotations

import pytest

from repro.energy import (
    Battery,
    ConstantPowerConsumption,
    ConsumptionModel,
    DutyCycleConsumption,
    LocomotionModel,
    demand_from_battery,
    lognormal_demands,
    uniform_demands,
)
from repro.errors import ConfigurationError


class TestBattery:
    def test_starts_full_by_default(self):
        b = Battery(capacity=100.0)
        assert b.level == 100.0
        assert b.headroom == 0.0
        assert b.state_of_charge == 1.0

    def test_explicit_level(self):
        b = Battery(capacity=100.0, level=40.0)
        assert b.headroom == 60.0
        assert b.state_of_charge == pytest.approx(0.4)

    def test_charge_clamps_at_capacity(self):
        b = Battery(capacity=100.0, level=80.0)
        stored = b.charge(50.0)
        assert stored == 20.0
        assert b.level == 100.0

    def test_discharge_clamps_at_empty(self):
        b = Battery(capacity=100.0, level=30.0)
        drawn = b.discharge(50.0)
        assert drawn == 30.0
        assert b.level == 0.0
        assert b.is_depleted()

    def test_charge_discharge_roundtrip(self):
        b = Battery(capacity=100.0, level=50.0)
        assert b.charge(25.0) == 25.0
        assert b.discharge(25.0) == 25.0
        assert b.level == 50.0

    def test_depletion_threshold(self):
        b = Battery(capacity=100.0, level=5.0)
        assert b.is_depleted(threshold=5.0)
        assert not b.is_depleted(threshold=1.0)

    def test_negative_amounts_rejected(self):
        b = Battery(capacity=10.0)
        with pytest.raises(ValueError):
            b.charge(-1.0)
        with pytest.raises(ValueError):
            b.discharge(-1.0)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            Battery(capacity=0.0)
        with pytest.raises(ConfigurationError):
            Battery(capacity=10.0, level=11.0)


class TestConsumption:
    def test_constant_power(self):
        m = ConstantPowerConsumption(power=2.0)
        assert m.energy_over(10.0) == 20.0
        assert m.energy_over(0.0) == 0.0

    def test_constant_power_satisfies_protocol(self):
        assert isinstance(ConstantPowerConsumption(1.0), ConsumptionModel)

    def test_duty_cycle_average_power(self):
        m = DutyCycleConsumption(active_power=10.0, sleep_power=1.0, duty_cycle=0.2)
        assert m.average_power == pytest.approx(0.2 * 10 + 0.8 * 1)
        assert m.energy_over(100.0) == pytest.approx(m.average_power * 100.0)

    def test_duty_cycle_bounds(self):
        full = DutyCycleConsumption(5.0, 0.0, 1.0)
        idle = DutyCycleConsumption(5.0, 0.0, 0.0)
        assert full.average_power == 5.0
        assert idle.average_power == 0.0

    def test_duty_cycle_validation(self):
        with pytest.raises(ConfigurationError):
            DutyCycleConsumption(5.0, 1.0, 1.5)
        with pytest.raises(ConfigurationError):
            DutyCycleConsumption(1.0, 2.0, 0.5)  # sleep > active

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            ConstantPowerConsumption(1.0).energy_over(-1.0)

    def test_locomotion(self):
        m = LocomotionModel(energy_per_meter=0.5)
        assert m.energy_for(10.0) == 5.0
        with pytest.raises(ValueError):
            m.energy_for(-1.0)
        with pytest.raises(ConfigurationError):
            LocomotionModel(energy_per_meter=-0.1)


class TestDemand:
    def test_demand_from_battery_full_target(self):
        b = Battery(capacity=100.0, level=30.0)
        assert demand_from_battery(b) == 70.0

    def test_demand_from_battery_partial_target(self):
        b = Battery(capacity=100.0, level=30.0)
        assert demand_from_battery(b, target_soc=0.5) == 20.0

    def test_demand_zero_when_above_target(self):
        b = Battery(capacity=100.0, level=90.0)
        assert demand_from_battery(b, target_soc=0.8) == 0.0

    def test_demand_invalid_target(self):
        b = Battery(capacity=10.0)
        with pytest.raises(ConfigurationError):
            demand_from_battery(b, target_soc=0.0)
        with pytest.raises(ConfigurationError):
            demand_from_battery(b, target_soc=1.5)

    def test_uniform_demands_in_range_and_seeded(self):
        ds = uniform_demands(100, 5.0, 9.0, rng=4)
        assert len(ds) == 100
        assert all(5.0 <= d <= 9.0 for d in ds)
        assert ds == uniform_demands(100, 5.0, 9.0, rng=4)

    def test_uniform_demands_validation(self):
        with pytest.raises(ConfigurationError):
            uniform_demands(-1, 0, 1)
        with pytest.raises(ConfigurationError):
            uniform_demands(3, 5.0, 4.0)

    def test_lognormal_demands_mean(self):
        ds = lognormal_demands(20_000, mean=100.0, sigma=0.5, rng=1)
        assert all(d > 0 for d in ds)
        assert sum(ds) / len(ds) == pytest.approx(100.0, rel=0.05)

    def test_lognormal_validation(self):
        with pytest.raises(ConfigurationError):
            lognormal_demands(5, mean=0.0)
        with pytest.raises(ConfigurationError):
            lognormal_demands(5, mean=1.0, sigma=-1.0)
