"""Self-healing shard tests: supervisor failover, degraded routing,
facade lifecycle, and supervised chaos convergence.

The contract under test (docs/RECOVERY.md):

1. **Failover**: a shard kernel death — clean or torn — heals through
   the supervisor's backoff/recover/re-feed loop; the run converges
   byte-identical (schedule and metrics) to a fault-free run with zero
   operator calls.
2. **Backoff**: logical, seed-derived, a pure function of
   ``(seed, shard, attempt)`` — never a wall-clock sleep.
3. **Escalation**: past the restart budget the shard is marked down and
   the router degrades: interior requests get typed
   ``rejected.shard_unavailable`` answers, border devices re-route to
   the cheapest surviving candidate, sticky assignments to a down shard
   raise rather than silently reassign.
4. **Lifecycle**: ``close()`` is idempotent; recovering a *live* journal
   directory is a typed :class:`~repro.errors.LiveJournalError`; a
   missing/corrupt/version-skewed manifest is a typed
   :class:`~repro.errors.RecoveryError`.
5. **Replayability**: the supervision journal is byte-identical across
   runs of the same timeline + plan + seed.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import (
    ConfigurationError,
    LiveJournalError,
    RecoveryError,
    ServiceError,
    ShardUnavailableError,
)
from repro.faults import FaultPlan, FaultyJournal
from repro.faults.plan import SUPERVISOR_KINDS
from repro.geometry import Field, Point
from repro.service import RequestState, ServiceConfig, generate_requests
from repro.shard import ShardedService, ShardSupervisor, drive_supervised
from repro.shard.driver import drive_sharded
from repro.shard.service import MANIFEST_NAME
from repro.shard.supervisor import SUPERVISOR_JOURNAL_NAME
from repro.wpt import Charger

FIELD = Field(100.0, 100.0)
CONFIG = ServiceConfig(epoch=30.0, window=120.0)


def make_chargers():
    return [
        Charger(charger_id="c0", position=Point(25.0, 25.0)),
        Charger(charger_id="c1", position=Point(75.0, 25.0)),
        Charger(charger_id="c2", position=Point(25.0, 75.0)),
        Charger(charger_id="c3", position=Point(75.0, 75.0)),
    ]


def make_stream(n=30, seed=7):
    return generate_requests(
        n, rate=0.2, deadline_slack=900.0, max_price_factor=1.3, rng=seed
    )


def make_service(journal_dir, n_shards=4, halo=0.0, **kw):
    return ShardedService(
        make_chargers(),
        n_shards=n_shards,
        field=FIELD,
        halo=halo,
        config=CONFIG,
        journal_dir=journal_dir,
        **kw,
    )


def reference_run(requests, plan=None, n_shards=4, halo=0.0, **kw):
    """The fault-free (kernel faults only, no shard chaos) baseline."""
    if plan is not None:
        plan = FaultPlan([
            e for e in plan.events
            if e.kind not in SUPERVISOR_KINDS and e.kind != "recovery_crash"
        ])
    service = ShardedService(
        make_chargers(), n_shards=n_shards, field=FIELD, halo=halo,
        config=CONFIG, journal_dir=None, **kw,
    )
    service, _stats = drive_sharded(service, requests, plan)
    return service


class TestBackoff:
    def test_pure_function_of_seed_shard_attempt(self, tmp_path):
        svc = make_service(tmp_path / "a")
        sup1 = ShardSupervisor(svc, seed=11)
        sup2 = ShardSupervisor(svc, seed=11)
        sup3 = ShardSupervisor(svc, seed=12)
        series1 = [sup1.backoff(2, a) for a in range(1, 6)]
        series2 = [sup2.backoff(2, a) for a in range(1, 6)]
        series3 = [sup3.backoff(2, a) for a in range(1, 6)]
        assert series1 == series2
        assert series1 != series3
        assert sup1.backoff(1, 1) != sup1.backoff(2, 1)
        sup1.close(), sup2.close(), sup3.close()
        svc.close()

    def test_exponential_and_capped(self, tmp_path):
        svc = make_service(tmp_path / "b")
        sup = ShardSupervisor(
            svc, seed=3, backoff_base=1.0, backoff_factor=2.0, backoff_cap=8.0
        )
        for attempt in range(1, 10):
            pause = sup.backoff(0, attempt)
            base = min(8.0, 2.0 ** (attempt - 1))
            assert 0.5 * base <= pause < 1.5 * base
        sup.close()
        svc.close()

    def test_validation(self, tmp_path):
        svc = make_service(tmp_path / "c")
        with pytest.raises(ConfigurationError):
            ShardSupervisor(svc, max_restarts=0)
        with pytest.raises(ConfigurationError):
            ShardSupervisor(svc, backoff_factor=0.5)
        sup = ShardSupervisor(svc)
        with pytest.raises(ConfigurationError):
            sup.backoff(0, 0)
        sup.close()
        svc.close()


class TestFailover:
    @pytest.mark.parametrize("torn", [False, True])
    def test_kill_heals_byte_identical(self, tmp_path, torn):
        requests = make_stream()
        ref = reference_run(requests)
        svc = make_service(tmp_path / "svc")
        sup = ShardSupervisor(svc, seed=5)
        half = len(requests) // 2
        for r in requests[:half]:
            sup.call("submit", r)
        assert sup.kill_shard(1, torn=torn) is True
        for r in requests[half:]:
            sup.call("submit", r)
        sup.call("drain")
        assert sup.stats["failures"] == 1
        assert sup.stats["recoveries"] == 1
        assert sup.stats["escalations"] == 0
        assert svc.shards_down() == []
        assert svc.final_schedule() == ref.final_schedule()
        assert svc.metrics_snapshot() == ref.metrics_snapshot()
        sup.close()
        svc.close()

    def test_crash_loop_escalates_then_operator_reset_recovers(self, tmp_path):
        requests = make_stream()
        svc = make_service(tmp_path / "svc")
        # Arm three recovery crashes against a budget of two: the
        # supervisor must escalate, and the shared fail_at dict must keep
        # the third crash armed for the operator's reset.
        fail_at = {1: "enospc", 2: "enospc", 3: "enospc"}

        def factory(shard):
            if shard != 1:
                return None
            return lambda path: FaultyJournal(
                path, truncate=True, sync=False, fail_at=fail_at
            )

        sup = ShardSupervisor(
            svc, seed=5, max_restarts=2, recovery_journal_factory=factory
        )
        for r in requests:
            sup.call("submit", r)
        assert sup.kill_shard(1) is False
        assert sup.stats["escalations"] == 1
        assert svc.shards_down() == [1]
        # Reset: one crash left, budget of two -> second attempt lands.
        assert sup.reset_shard(1) is True
        assert svc.shards_down() == []
        assert not fail_at
        sup.call("drain")
        ref = reference_run(requests)
        assert svc.final_schedule() == ref.final_schedule()
        assert svc.metrics_snapshot() == ref.metrics_snapshot()
        sup.close()
        svc.close()

    def test_supervision_journal_is_byte_stable(self, tmp_path):
        requests = make_stream(20)
        horizon = requests[-1].submitted_at + 600.0
        plan = FaultPlan.generate_supervised(9, 4, horizon)
        raws = []
        for tag in ("one", "two"):
            svc = make_service(tmp_path / tag, snapshot_every=15)
            svc, sup, _stats = drive_supervised(svc, requests, plan, seed=9)
            sup.close()
            svc.close()
            raws.append((tmp_path / tag / SUPERVISOR_JOURNAL_NAME).read_bytes())
        assert raws[0] == raws[1]
        assert raws[0]  # chaos actually landed something


class TestDegradedRouting:
    def test_interior_requests_get_typed_rejections(self, tmp_path):
        requests = make_stream()
        svc = make_service(tmp_path / "svc")
        svc.mark_shard_down(0)
        rejected = 0
        for r in requests:
            state = svc.submit(r)
            owner = svc.partition.cell_of(r.device.position)
            if owner == 0:
                assert state == RequestState.REJECTED
                rejected += 1
            else:
                assert state != RequestState.REJECTED
        assert rejected > 0
        ops = svc.ops.snapshot(operational=True)["counters"]
        assert ops["rejected.shard_unavailable"] == rejected
        assert ops["rejected.shard_unavailable.unrouted"] == rejected
        assert svc.counts()["rejected"] == rejected
        svc.close()

    def test_rejection_is_sticky_even_after_mark_up(self, tmp_path):
        requests = make_stream()
        svc = make_service(tmp_path / "svc")
        svc.mark_shard_down(0)
        victim = next(
            r for r in requests
            if svc.partition.cell_of(r.device.position) == 0
        )
        assert svc.submit(victim) == RequestState.REJECTED
        svc.mark_shard_up(0)
        # The rejection was the service's answer; resubmission cannot
        # quietly un-reject it.
        assert svc.submit(victim) == RequestState.REJECTED
        assert svc.request_state(victim.request_id) == RequestState.REJECTED
        svc.close()

    def test_border_devices_reroute_to_surviving_candidate(self, tmp_path):
        requests = make_stream()
        # A halo as wide as the field makes every device a border device
        # with all four shards as candidates.
        svc = make_service(tmp_path / "svc", halo=100.0)
        svc.mark_shard_down(0)
        for r in requests:
            assert svc.submit(r) != RequestState.REJECTED
            assert svc.router.shard_of(r.request_id) != 0
        ops = svc.ops.snapshot(operational=True)["counters"]
        assert ops["rejected.shard_unavailable"] == 0
        svc.close()

    def test_sticky_assignment_to_down_shard_raises(self, tmp_path):
        requests = make_stream()
        svc = make_service(tmp_path / "svc")
        routed = next(
            r for r in requests
            if svc.partition.cell_of(r.device.position) == 1
        )
        assert svc.submit(routed) != RequestState.REJECTED
        svc.mark_shard_down(1)
        with pytest.raises(ShardUnavailableError):
            svc.router.route(routed)
        # The facade converts that into a typed sticky rejection...
        assert svc.submit(routed) == RequestState.REJECTED
        ops = svc.ops.snapshot(operational=True)["counters"]
        assert ops["rejected.shard_unavailable.sticky"] == 1
        # ...but the assignment itself survives the outage.
        svc.mark_shard_up(1)
        assert svc.router.shard_of(routed.request_id) == 1
        svc.close()

    def test_advance_skips_down_shards_and_inputs_drop(self, tmp_path):
        svc = make_service(tmp_path / "svc")
        for r in make_stream():
            svc.submit(r)
        svc.mark_shard_down(2)
        before = svc.kernels[2].clock.now
        svc.advance(500.0)
        assert svc.kernels[2].clock.now == before
        owner = next(
            c.charger_id for c in make_chargers()
            if svc.partition.cell_of(c.position) == 2
        )
        assert svc.fail_charger(owner, at=500.0) is False
        ops = svc.ops.snapshot(operational=True)["counters"]
        assert ops["inputs.dropped_shard_down"] == 1
        svc.close()

    def test_mark_down_unknown_shard_raises(self, tmp_path):
        svc = make_service(tmp_path / "svc")
        with pytest.raises(ServiceError):
            svc.mark_shard_down(99)
        svc.close()


class TestFacadeLifecycle:
    def test_close_is_idempotent(self, tmp_path):
        svc = make_service(tmp_path / "svc")
        for r in make_stream(10):
            svc.submit(r)
        svc.drain()
        svc.close()
        svc.close()

    def test_recovering_a_live_journal_dir_is_typed(self, tmp_path):
        svc = make_service(tmp_path / "svc")
        for r in make_stream(10):
            svc.submit(r)
        svc.drain()
        with pytest.raises(LiveJournalError):
            ShardedService.recover(tmp_path / "svc", make_chargers(), config=CONFIG)
        svc.close()
        rec = ShardedService.recover(tmp_path / "svc", make_chargers(), config=CONFIG)
        assert rec.final_schedule() == svc.final_schedule()
        rec.close()

    @pytest.mark.parametrize("defect", ["missing", "corrupt", "schema"])
    def test_bad_manifest_is_a_typed_recovery_error(self, tmp_path, defect):
        svc = make_service(tmp_path / "svc")
        for r in make_stream(10):
            svc.submit(r)
        svc.drain()
        svc.close()
        manifest = tmp_path / "svc" / MANIFEST_NAME
        if defect == "missing":
            manifest.unlink()
        elif defect == "corrupt":
            manifest.write_text("{oops")
        else:
            doc = json.loads(manifest.read_text())
            doc["schema"] = 99
            manifest.write_text(json.dumps(doc))
        with pytest.raises(RecoveryError):
            ShardedService.recover(tmp_path / "svc", make_chargers(), config=CONFIG)


def run_supervised_case(tmp_path, stream_seed, chaos_seed, n=25, tag="chaos"):
    """One supervised chaos run + its fault-free reference; assert
    byte-identical convergence with zero escalations."""
    requests = make_stream(n, seed=stream_seed)
    horizon = requests[-1].submitted_at + 600.0
    plan = FaultPlan.generate_supervised(chaos_seed, 4, horizon)
    svc = make_service(tmp_path / f"{tag}-{stream_seed}-{chaos_seed}",
                       snapshot_every=15)
    svc, sup, stats = drive_supervised(svc, requests, plan, seed=chaos_seed)
    ref = reference_run(requests, plan)
    assert sup.stats["escalations"] == 0
    assert svc.shards_down() == []
    assert svc.final_schedule() == ref.final_schedule()
    assert svc.metrics_snapshot() == ref.metrics_snapshot()
    sup.close()
    svc.close()
    return stats, sup.stats


@pytest.mark.recovery_smoke
class TestSupervisedChaosSmoke:
    def test_converges_byte_identical_with_zero_operator_calls(self, tmp_path):
        # Seed 3 mixes torn + clean kills, snapshot corruption, and a
        # crash-looping recovery (see FaultPlan.generate_supervised).
        chaos_stats, sup_stats = run_supervised_case(tmp_path, 7, 3)
        assert chaos_stats["kills"] > 0
        assert sup_stats["recoveries"] == sup_stats["failures"] > 0


class TestSupervisedChaos:
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(stream_seed=st.integers(0, 10_000), chaos_seed=st.integers(0, 10_000))
    def test_supervised_chaos_converges(self, stream_seed, chaos_seed,
                                        tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("supchaos")
        run_supervised_case(tmp_path, stream_seed, chaos_seed, n=15)

    @pytest.mark.chaos
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(stream_seed=st.integers(0, 1_000_000),
           chaos_seed=st.integers(0, 1_000_000),
           n=st.integers(10, 30))
    def test_supervised_chaos_converges_heavy(self, stream_seed, chaos_seed, n,
                                              tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("supchaos")
        run_supervised_case(tmp_path, stream_seed, chaos_seed, n=n, tag="heavy")
