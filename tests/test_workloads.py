"""Unit tests for workload generation and the testbed topology."""

from __future__ import annotations

import pytest

from repro.core import ccsa, validate_schedule
from repro.errors import ConfigurationError
from repro.workloads import (
    DEFAULT_SPEC,
    LARGE_SCALE_SPEC,
    N_TESTBED_CHARGERS,
    N_TESTBED_NODES,
    SMALL_SCALE_SPEC,
    TESTBED_FIELD,
    WorkloadSpec,
    generate_instance,
    parameter_table,
    quick_instance,
    scenario,
    testbed_chargers as make_chargers,
    testbed_devices as make_devices,
    testbed_instance as make_instance,
)


class TestWorkloadSpec:
    def test_defaults_valid(self):
        assert DEFAULT_SPEC.n_devices == 30

    def test_with_replaces_fields(self):
        spec = DEFAULT_SPEC.with_(n_devices=99, side=123.0)
        assert spec.n_devices == 99 and spec.side == 123.0
        assert DEFAULT_SPEC.n_devices == 30  # original untouched

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_devices=0),
            dict(n_chargers=0),
            dict(device_layout="hexagonal"),
            dict(charger_layout="spiral"),
            dict(demand_model="pareto"),
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(**kwargs)


class TestGenerateInstance:
    def test_sizes_and_field(self):
        inst = generate_instance(DEFAULT_SPEC, seed=1)
        assert inst.n_devices == DEFAULT_SPEC.n_devices
        assert inst.n_chargers == DEFAULT_SPEC.n_chargers
        assert inst.field_area.width == DEFAULT_SPEC.side

    def test_deterministic_per_seed(self):
        a = generate_instance(DEFAULT_SPEC, seed=7)
        b = generate_instance(DEFAULT_SPEC, seed=7)
        assert [d.position for d in a.devices] == [d.position for d in b.devices]
        assert [d.demand for d in a.devices] == [d.demand for d in b.devices]

    def test_different_seeds_differ(self):
        a = generate_instance(DEFAULT_SPEC, seed=1)
        b = generate_instance(DEFAULT_SPEC, seed=2)
        assert [d.demand for d in a.devices] != [d.demand for d in b.devices]

    def test_demands_in_configured_range(self):
        inst = generate_instance(DEFAULT_SPEC, seed=3)
        for d in inst.devices:
            assert DEFAULT_SPEC.demand_low <= d.demand <= DEFAULT_SPEC.demand_high

    def test_positions_inside_field(self):
        inst = generate_instance(DEFAULT_SPEC.with_(device_layout="cluster"), seed=4)
        assert all(inst.field_area.contains(d.position) for d in inst.devices)

    def test_lognormal_demands(self):
        inst = generate_instance(DEFAULT_SPEC.with_(demand_model="lognormal"), seed=5)
        assert all(d.demand > 0 for d in inst.devices)

    def test_homogeneous_prices_option(self):
        inst = generate_instance(
            DEFAULT_SPEC.with_(heterogeneous_prices=False), seed=6
        )
        bases = {c.tariff.base for c in inst.chargers}
        assert bases == {DEFAULT_SPEC.base_price}

    def test_quick_instance_overrides(self):
        inst = quick_instance(5, 2, seed=1, capacity=None, side=42.0)
        assert inst.n_devices == 5
        assert inst.capacity_of(0) is None
        assert inst.field_area.width == 42.0

    def test_generated_instances_are_schedulable(self):
        inst = generate_instance(SMALL_SCALE_SPEC, seed=8)
        validate_schedule(ccsa(inst), inst)


class TestScenarios:
    def test_lookup(self):
        assert scenario("small") is SMALL_SCALE_SPEC
        assert scenario("large") is LARGE_SCALE_SPEC
        with pytest.raises(KeyError, match="available"):
            scenario("nope")

    def test_parameter_table_shape(self):
        rows = parameter_table()
        assert len(rows) >= 10
        assert all(len(r) == 4 for r in rows)
        names = [r[0] for r in rows]
        assert any("base price" in n.lower() for n in names)


class TestTestbedTopology:
    def test_sizes_match_paper(self):
        assert N_TESTBED_CHARGERS == 5
        assert N_TESTBED_NODES == 8
        assert len(make_chargers()) == 5
        assert len(make_devices(rng=0)) == 8

    def test_everything_inside_room(self):
        inst = make_instance(rng=1)
        for d in inst.devices:
            assert TESTBED_FIELD.contains(d.position)
        for c in inst.chargers:
            assert TESTBED_FIELD.contains(c.position)

    def test_nominal_topology_without_jitter(self):
        a = make_devices(rng=0, demand_jitter=0.0, position_jitter=0.0)
        b = make_devices(rng=99, demand_jitter=0.0, position_jitter=0.0)
        assert [d.position for d in a] == [d.position for d in b]
        assert [d.demand for d in a] == [d.demand for d in b]

    def test_jitter_perturbs(self):
        a = make_devices(rng=0)
        b = make_devices(rng=1)
        assert [d.demand for d in a] != [d.demand for d in b]

    def test_jitter_reproducible_per_seed(self):
        a = make_devices(rng=5)
        b = make_devices(rng=5)
        assert [d.demand for d in a] == [d.demand for d in b]

    def test_instance_schedulable_and_cooperative(self):
        inst = make_instance(rng=2)
        sched = ccsa(inst)
        validate_schedule(sched, inst)
        # On the testbed, CCSA should actually form groups.
        assert any(s.size > 1 for s in sched.sessions)
