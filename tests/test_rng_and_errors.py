"""Tests for the RNG helpers and the exception hierarchy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    InfeasibleError,
    ReproError,
    ScheduleValidationError,
    SimulationError,
)
from repro.rng import derive_seed, ensure_rng, spawn


class TestEnsureRng:
    def test_none_gives_fresh_generator(self):
        gen = ensure_rng(None)
        assert isinstance(gen, np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1_000_000, size=5)
        b = ensure_rng(42).integers(0, 1_000_000, size=5)
        assert (a == b).all()

    def test_generator_passes_through(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen


class TestSpawn:
    def test_children_are_independent_and_deterministic(self):
        kids_a = spawn(ensure_rng(7), 3)
        kids_b = spawn(ensure_rng(7), 3)
        assert len(kids_a) == 3
        for ka, kb in zip(kids_a, kids_b):
            assert (ka.integers(0, 10**6, 4) == kb.integers(0, 10**6, 4)).all()

    def test_children_differ_from_each_other(self):
        kids = spawn(ensure_rng(7), 2)
        assert (kids[0].integers(0, 10**6, 8) != kids[1].integers(0, 10**6, 8)).any()

    def test_zero_children(self):
        assert spawn(ensure_rng(0), 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(ensure_rng(0), -1)


class TestDeriveSeed:
    def test_integer_paths_unchanged(self):
        # The historical integer form must keep its exact values — every
        # recorded experiment seed depends on it.
        ss = np.random.SeedSequence(42, spawn_key=(3, 7))
        assert derive_seed(42, 3, 7) == int(ss.generate_state(1, dtype=np.uint32)[0])

    def test_string_components_are_deterministic(self):
        assert derive_seed(1, "shard", 0) == derive_seed(1, "shard", 0)
        assert derive_seed(1, "cancel", "r000001") == derive_seed(1, "cancel", "r000001")

    def test_string_components_separate_namespaces(self):
        seeds = {
            derive_seed(5, "outage", "c0"),
            derive_seed(5, "cancel", "c0"),
            derive_seed(5, "shard", 0),
            derive_seed(5, "outage", "c1"),
        }
        assert len(seeds) == 4

    def test_path_order_matters(self):
        assert derive_seed(9, "a", "b") != derive_seed(9, "b", "a")

    def test_value_independent_of_sibling_derivations(self):
        # Pure function of (root, path): deriving other children first
        # never shifts a seed — the property keyed fault streams rest on.
        before = derive_seed(11, "request", 4)
        for k in range(20):
            derive_seed(11, "request", k)
        assert derive_seed(11, "request", 4) == before


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            InfeasibleError,
            ScheduleValidationError,
            ConvergenceError,
            SimulationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_configuration_error_is_value_error(self):
        # Callers using plain `except ValueError` still catch config bugs.
        assert issubclass(ConfigurationError, ValueError)

    def test_convergence_error_carries_iterations(self):
        e = ConvergenceError("stalled", iterations=17)
        assert e.iterations == 17
        assert "stalled" in str(e)

    def test_one_except_clause_catches_everything(self):
        for exc in (ConfigurationError("x"), SimulationError("y"), InfeasibleError("z")):
            try:
                raise exc
            except ReproError:
                pass


class TestSweepRuntime:
    def test_runtime_sweep_shape(self):
        from repro.experiments import sweep_runtime
        from repro.workloads import SMALL_SCALE_SPEC

        res = sweep_runtime(
            "rt", "runtimes", SMALL_SCALE_SPEC, "n_devices", [4, 6], trials=1, seed=0
        )
        assert set(res.series) == {"NCA", "CCSA", "CCSGA"}
        assert all(all(t >= 0 for t in ys) for ys in res.series.values())
        # NCA is trivially the fastest solver at any size.
        for k in range(2):
            assert res.series["NCA"][k] <= res.series["CCSA"][k]
