"""Chaos suite: service invariants under randomized fault injection.

Hypothesis drives seed-derived request streams and fault plans through
the kernel and asserts, after *every* injected event:

1. **Ceiling**: no request is ever charged more than its original
   admission quote (plus the planner tolerance) — not after outages,
   not after re-folds, not after survivor re-sharing.
2. **Cache coherence**: the incremental coalition structure's cached
   aggregates, fingerprints, and Zobrist hash match a from-scratch
   recomputation (``check_invariants``).
3. **Bookkeeping**: the kernel's request-to-plan maps mirror the
   structure's placements exactly.
4. **Terminality**: after ``drain()`` every request is terminal.
5. **Durability**: the journal replays byte-identically from any
   truncation point, and the crash → recover → re-feed loop under
   injected journal faults converges on the exact journal an
   uninterrupted fault-free-disk run writes.

The quick versions run in tier-1; the ``chaos``-marked heavy versions
(hundreds of examples) run via ``make chaos``.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.geometry import Point
from repro.service import (
    ChargingService,
    Journal,
    RequestState,
    ServiceConfig,
    generate_requests,
)
from repro.faults import FaultPlan, apply_event, drive, drive_with_recovery, merge_timeline
from repro.wpt import Charger

CONFIG = ServiceConfig(epoch=60.0, window=120.0)


def make_chargers():
    return [
        Charger(charger_id="c0", position=Point(20.0, 20.0)),
        Charger(charger_id="c1", position=Point(80.0, 80.0)),
        Charger(charger_id="c2", position=Point(50.0, 10.0)),
    ]


def make_stream(seed, n=10):
    return generate_requests(
        n, rate=0.05, deadline_slack=4000.0, max_price_factor=1.5, rng=seed
    )


def make_plan(seed, requests, journal_faults=0):
    return FaultPlan.generate(
        seed,
        charger_ids=[c.charger_id for c in make_chargers()],
        requests=requests,
        outage_prob=0.7,
        cancel_prob=0.2,
        no_show_prob=0.1,
        journal_faults=journal_faults,
    )


def assert_invariants(svc):
    """The per-event invariant bundle (module docstring items 1–3)."""
    svc.planner.structure.check_invariants()
    tol = svc.planner.tol
    placed = set(svc.planner.structure._of_device)
    mapped = set(svc._rid_of_index)
    assert mapped == placed, f"kernel maps {mapped} != structure {placed}"
    for rid, record in svc.requests.items():
        if record.realized_cost is not None and record.quote is not None:
            assert record.realized_cost <= record.quote + tol, (
                f"{rid} charged {record.realized_cost} over quote {record.quote}"
            )
        if record.state == RequestState.GROUPED:
            assert record.device_index in placed
        if record.state == RequestState.EVACUATING:
            assert rid in svc._evacuating
            assert record.device_index not in placed


class TestInvariantsUnderChaos:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(stream_seed=st.integers(0, 10_000), fault_seed=st.integers(0, 10_000))
    def test_every_event_preserves_the_invariants(self, stream_seed, fault_seed):
        requests = make_stream(stream_seed)
        plan = make_plan(fault_seed, requests)
        svc = ChargingService(make_chargers(), config=CONFIG)
        for item in merge_timeline(requests, plan):
            apply_event(svc, item)
            assert_invariants(svc)
        svc.drain()
        assert_invariants(svc)
        for rid, record in svc.requests.items():
            assert record.state in RequestState.TERMINAL, (rid, record.state)

    @pytest.mark.chaos
    @settings(max_examples=200, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(stream_seed=st.integers(0, 1_000_000),
           fault_seed=st.integers(0, 1_000_000),
           n=st.integers(5, 25))
    def test_every_event_preserves_the_invariants_heavy(
        self, stream_seed, fault_seed, n
    ):
        requests = make_stream(stream_seed, n=n)
        plan = make_plan(fault_seed, requests)
        svc = ChargingService(make_chargers(), config=CONFIG)
        for item in merge_timeline(requests, plan):
            apply_event(svc, item)
            assert_invariants(svc)
        svc.drain()
        assert_invariants(svc)
        for record in svc.requests.values():
            assert record.state in RequestState.TERMINAL


class TestDurabilityUnderChaos:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10_000), frac=st.floats(0.1, 0.95))
    def test_any_truncation_point_recovers_byte_identical(self, seed, frac, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("chaos")
        requests = make_stream(seed)
        plan = make_plan(seed + 1, requests)
        path = tmp_path / "svc.jsonl"
        svc = ChargingService(make_chargers(), config=CONFIG, journal_path=path,
                              journal_sync=False)
        drive(svc, requests, plan)
        svc.journal.close()
        raw = path.read_bytes()
        # Kill at an arbitrary *byte* — mid-record cuts model kill -9.
        cut = max(1, int(len(raw) * frac))
        path.write_bytes(raw[:cut])
        rec = ChargingService.recover(path, make_chargers(), config=CONFIG,
                                      journal_sync=False)
        drive(rec, requests, plan)  # idempotent re-feed of the same inputs
        rec.journal.close()
        assert path.read_bytes() == raw
        assert rec.final_schedule() == svc.final_schedule()
        assert rec.metrics_snapshot() == svc.metrics_snapshot()

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10_000))
    def test_journal_fault_crash_loop_converges(self, seed, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("chaos")
        requests = make_stream(seed)
        plan = make_plan(seed + 1, requests, journal_faults=3)
        path = tmp_path / "faulty.jsonl"
        svc, stats = drive_with_recovery(path, make_chargers(), requests, plan,
                                         config=CONFIG)
        svc.journal.close()
        ref_path = tmp_path / "ref.jsonl"
        ref = ChargingService(make_chargers(), config=CONFIG,
                              journal_path=ref_path, journal_sync=False)
        drive(ref, requests, plan)
        ref.journal.close()
        assert path.read_bytes() == ref_path.read_bytes()
        assert svc.metrics_snapshot() == ref.metrics_snapshot()
        assert svc.final_schedule() == ref.final_schedule()
        # Every crash fires exactly one armed fault; a crash during
        # recovery retries the recovery, so recoveries never exceed
        # crashes but the last crash always ends in a successful one.
        assert stats["crashes"] == len(stats["journal_faults_fired"])
        assert stats["recoveries"] <= stats["crashes"]
        assert stats["crashes"] == 0 or stats["recoveries"] >= 1
        # Every journaled record is intact: longest-prefix read sees no tear.
        records, torn = Journal.read_records(path)
        assert not torn and records

    @pytest.mark.chaos
    @settings(max_examples=100, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 1_000_000), faults=st.integers(1, 6))
    def test_journal_fault_crash_loop_converges_heavy(self, seed, faults,
                                                      tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("chaos")
        requests = make_stream(seed, n=15)
        plan = make_plan(seed + 1, requests, journal_faults=faults)
        path = tmp_path / "faulty.jsonl"
        svc, _stats = drive_with_recovery(path, make_chargers(), requests, plan,
                                          config=CONFIG)
        svc.journal.close()
        ref_path = tmp_path / "ref.jsonl"
        ref = ChargingService(make_chargers(), config=CONFIG,
                              journal_path=ref_path, journal_sync=False)
        drive(ref, requests, plan)
        ref.journal.close()
        assert path.read_bytes() == ref_path.read_bytes()
