"""Property-based tests (hypothesis) for the service daemon's contracts.

Three invariants, over randomized request streams and configurations:

1. **Price safety** — no served request ever pays more than its quote,
   and hence never more than its ``max_price`` cap;
2. **Rejection is final** — a rejected request's device never appears in
   any departed session;
3. **Conservation** — at every observation point, every submitted
   request is in exactly one lifecycle state and the metrics counters
   agree with the ground-truth records.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Device
from repro.geometry import Point
from repro.service import ChargingRequest, ChargingService, RequestState, ServiceConfig
from repro.wpt import Charger

CHARGERS = [
    Charger(charger_id="c0", position=Point(20.0, 20.0)),
    Charger(charger_id="c1", position=Point(80.0, 80.0)),
]


@st.composite
def request_streams(draw):
    n = draw(st.integers(min_value=1, max_value=18))
    requests = []
    t = 0.0
    for k in range(n):
        t += draw(st.floats(min_value=0.5, max_value=90.0))
        demand = draw(st.floats(min_value=5e3, max_value=50e3))
        deadline = None
        if draw(st.booleans()):
            deadline = t + draw(st.floats(min_value=30.0, max_value=1200.0))
        max_price = None
        if draw(st.booleans()):
            # Spans well below to well above realistic quotes, so both
            # price rejections and admissions are exercised.
            max_price = draw(st.floats(min_value=100.0, max_value=20000.0))
        requests.append(
            ChargingRequest(
                request_id=f"r{k}",
                device=Device(
                    device_id=f"d{k}",
                    position=Point(
                        draw(st.floats(min_value=0.0, max_value=100.0)),
                        draw(st.floats(min_value=0.0, max_value=100.0)),
                    ),
                    demand=demand,
                ),
                submitted_at=t,
                deadline=deadline,
                max_price=max_price,
            )
        )
    return requests


def conservation_holds(svc, submitted_so_far):
    counts = svc.counts()
    assert sum(counts.values()) == submitted_so_far
    counters = svc.metrics_snapshot()["counters"]
    assert counters["submitted"] == submitted_so_far
    # Terminal counters match the records; live states are the remainder.
    assert counters["rejected"] == counts[RequestState.REJECTED]
    assert counters["expired"] == counts[RequestState.EXPIRED]
    assert counters["completed"] == counts[RequestState.DONE]
    live = (
        counts[RequestState.ADMITTED]
        + counts[RequestState.GROUPED]
        + counts[RequestState.CHARGING]
    )
    assert counters["admitted"] == submitted_so_far - counters["rejected"]
    assert live == (
        counters["admitted"] - counters["expired"] - counters["completed"]
    )


@given(request_streams(), st.sampled_from([30.0, 60.0]), st.sampled_from([60.0, 180.0]))
@settings(max_examples=40, deadline=None)
def test_service_invariants(requests, epoch, window):
    config = ServiceConfig(epoch=epoch, window=window, queue_limit=8)
    svc = ChargingService(CHARGERS, config=config)

    for k, request in enumerate(requests):
        svc.submit(request)
        conservation_holds(svc, k + 1)  # at every epoch/submission point
    svc.drain()
    conservation_holds(svc, len(requests))

    rejected_devices = {
        rec.request.device.device_id
        for rec in svc.requests.values()
        if rec.state == RequestState.REJECTED
    }
    served = set()
    for session in svc.final_schedule():
        served.update(session["members"])
        # Per-session accounting: shares + moving == per-member costs.
        assert set(session["costs"]) == set(session["members"])
    # Rejected requests never appear in any departed session.
    assert not (rejected_devices & served)

    for rec in svc.requests.values():
        if rec.realized_cost is not None:
            # Price safety: realized cost <= quote <= max_price cap.
            assert rec.realized_cost <= rec.quote + 1e-6
            cap = rec.request.max_price
            if cap is not None:
                assert rec.realized_cost <= cap + 1e-6
        if rec.state == RequestState.REJECTED:
            assert rec.request.device.device_id not in served
        if rec.state == RequestState.DONE:
            assert rec.request.device.device_id in served


@given(request_streams())
@settings(max_examples=25, deadline=None)
def test_double_submission_never_double_counts(requests):
    svc = ChargingService(CHARGERS)
    for request in requests:
        svc.submit(request)
        svc.submit(request)  # duplicate id: must be a pure no-op
    svc.drain()
    conservation_holds(svc, len(requests))
