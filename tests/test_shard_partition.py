"""Tests for the spatial grid partition behind the sharded service."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.geometry import Field, Point
from repro.shard import GridPartition, grid_shape
from repro.wpt import Charger

FIELD = Field(100.0, 100.0)


class TestGridShape:
    @pytest.mark.parametrize(
        "n,shape",
        [(1, (1, 1)), (2, (1, 2)), (3, (1, 3)), (4, (2, 2)),
         (6, (2, 3)), (8, (2, 4)), (9, (3, 3)), (12, (3, 4)), (16, (4, 4))],
    )
    def test_known_shapes(self, n, shape):
        assert grid_shape(n) == shape

    @pytest.mark.parametrize("n", range(1, 33))
    def test_cells_equal_shards(self, n):
        rows, cols = grid_shape(n)
        assert rows * cols == n
        assert rows <= cols

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            grid_shape(0)


class TestCellOf:
    def test_interior_points_land_in_their_cell(self):
        part = GridPartition(FIELD, 4)  # 2x2, row-major
        assert part.cell_of(Point(10.0, 10.0)) == 0
        assert part.cell_of(Point(90.0, 10.0)) == 1
        assert part.cell_of(Point(10.0, 90.0)) == 2
        assert part.cell_of(Point(90.0, 90.0)) == 3

    def test_shared_edge_goes_to_higher_cell(self):
        part = GridPartition(FIELD, 4)
        assert part.cell_of(Point(50.0, 10.0)) == 1
        assert part.cell_of(Point(10.0, 50.0)) == 2

    def test_out_of_field_points_clamp(self):
        part = GridPartition(FIELD, 4)
        assert part.cell_of(Point(-5.0, -5.0)) == 0
        assert part.cell_of(Point(1000.0, 1000.0)) == 3

    def test_bounds_tile_the_field(self):
        part = GridPartition(FIELD, 6)  # 2x3
        assert part.bounds(0) == (0.0, 0.0, 100.0 / 3, 50.0)
        assert part.bounds(5) == (200.0 / 3, 50.0, 100.0, 100.0)
        with pytest.raises(ConfigurationError):
            part.bounds(6)


class TestCandidates:
    def test_zero_halo_gives_singleton_candidates(self):
        part = GridPartition(FIELD, 4, halo=0.0)
        assert part.candidate_shards(Point(10.0, 10.0)) == [0]
        assert part.is_interior(Point(10.0, 10.0))

    def test_halo_makes_border_devices_multihomed(self):
        part = GridPartition(FIELD, 4, halo=5.0)
        # 4 m from the vertical midline: cells 0 and 1 both claim it.
        assert part.candidate_shards(Point(46.0, 10.0)) == [0, 1]
        assert not part.is_interior(Point(46.0, 10.0))
        # Deep inside cell 0: still exactly one candidate.
        assert part.candidate_shards(Point(20.0, 20.0)) == [0]

    def test_corner_device_sees_four_candidates(self):
        part = GridPartition(FIELD, 4, halo=5.0)
        assert part.candidate_shards(Point(50.0, 50.0)) == [0, 1, 2, 3]

    def test_candidates_always_include_owner(self):
        part = GridPartition(FIELD, 8, halo=7.5)
        for p in (Point(3.0, 3.0), Point(50.0, 50.0), Point(97.0, 48.0)):
            assert part.cell_of(p) in part.candidate_shards(p)

    def test_point_beyond_every_halo_falls_back_to_owner(self):
        part = GridPartition(FIELD, 4, halo=0.0)
        assert part.candidate_shards(Point(-50.0, -50.0)) == [0]

    def test_negative_halo_rejected(self):
        with pytest.raises(ConfigurationError):
            GridPartition(FIELD, 4, halo=-1.0)


class TestRefinement:
    def test_four_grid_refines_two_grid(self):
        # Every 4-grid cell nests inside exactly one 2-grid cell, so a
        # device interior to both partitions keeps a consistent spatial
        # neighborhood when the shard count doubles.
        two = GridPartition(FIELD, 2)
        four = GridPartition(FIELD, 4)
        for shard4 in range(4):
            x0, y0, x1, y1 = four.bounds(shard4)
            owners = {
                two.cell_of(Point(x, y))
                for x, y in [
                    (x0 + 1e-6, y0 + 1e-6),
                    ((x0 + x1) / 2, (y0 + y1) / 2),
                    (x1 - 1e-6, y1 - 1e-6),
                ]
            }
            assert len(owners) == 1


class TestAssignChargers:
    def test_every_shard_listed_and_order_preserved(self):
        part = GridPartition(FIELD, 4)
        chargers = [
            Charger(charger_id="c0", position=Point(10.0, 10.0)),
            Charger(charger_id="c1", position=Point(20.0, 20.0)),
            Charger(charger_id="c2", position=Point(90.0, 90.0)),
        ]
        owned = part.assign_chargers(chargers)
        assert sorted(owned) == [0, 1, 2, 3]
        assert [c.charger_id for c in owned[0]] == ["c0", "c1"]
        assert owned[1] == [] and owned[2] == []
        assert [c.charger_id for c in owned[3]] == ["c2"]

    def test_halo_never_shares_chargers(self):
        # A charger sitting in another cell's halo still has exactly one
        # owner — coalition state must live in one kernel.
        part = GridPartition(FIELD, 2, halo=20.0)
        charger = Charger(charger_id="edge", position=Point(49.0, 50.0))
        owned = part.assign_chargers([charger])
        assert [len(v) for _, v in sorted(owned.items())] == [1, 0]
