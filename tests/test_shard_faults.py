"""Shard-level fault injection: kill one kernel, the service keeps serving.

The acceptance property (ISSUE 8): a run that kills and recovers
individual shards — cleanly or with a torn journal tail — converges
byte-identical (per-shard journal bytes, merged metrics, merged
schedule) to a fault-free run of the same timeline, and the surviving
shards' journals are never touched by another shard's death.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.faults import FaultPlan
from repro.faults.plan import FaultEvent
from repro.geometry import Field, Point
from repro.service import ServiceConfig, generate_requests
from repro.shard import ShardedService, drive_sharded, shard_journal_name
from repro.wpt import Charger

FIELD = Field(100.0, 100.0)
CONFIG = ServiceConfig(epoch=60.0, window=120.0)


def make_chargers():
    return [
        Charger(charger_id="c0", position=Point(25.0, 25.0)),
        Charger(charger_id="c1", position=Point(75.0, 25.0)),
        Charger(charger_id="c2", position=Point(25.0, 75.0)),
        Charger(charger_id="c3", position=Point(75.0, 75.0)),
    ]


def make_stream(seed, n=16):
    return generate_requests(
        n, rate=0.1, deadline_slack=2000.0, max_price_factor=1.5, rng=seed
    )


def run_to_journals(tmp_path, tag, stream, plan):
    svc = ShardedService(
        make_chargers(), n_shards=4, field=FIELD, halo=10.0, config=CONFIG,
        journal_dir=tmp_path / tag, journal_sync=False,
    )
    _, stats = drive_sharded(
        svc, stream, plan, advance_to=stream[-1].submitted_at + 300.0
    )
    svc.close()
    journals = {
        sid: (tmp_path / tag / shard_journal_name(sid)).read_bytes()
        for sid in svc.kernels
    }
    return svc, stats, journals


def kill_plan(kernel_plan, kills):
    """*kernel_plan*'s events plus explicit shard_kill events."""
    events = list(kernel_plan) + [
        FaultEvent(t=t, kind="shard_kill", target=str(sid), mode=mode)
        for sid, t, mode in kills
    ]
    return FaultPlan(events)


class TestShardKillConvergence:
    @pytest.mark.parametrize(
        "kills",
        [
            [(1, 900.0, None)],                                # one clean kill
            [(2, 700.0, "torn")],                              # one torn kill
            [(0, 500.0, None), (3, 1500.0, "torn"),
             (1, 2500.0, "torn")],                             # mixed barrage
        ],
    )
    def test_converges_byte_identical_to_fault_free(self, tmp_path, kills):
        stream = make_stream(4)
        base = FaultPlan.generate(
            13,
            charger_ids=[c.charger_id for c in make_chargers()],
            requests=stream,
            outage_prob=0.5,
            cancel_prob=0.15,
            no_show_prob=0.05,
        )
        ref, ref_stats, ref_journals = run_to_journals(
            tmp_path, "ref", stream, base
        )
        assert ref_stats["kills"] == 0

        chaos, stats, journals = run_to_journals(
            tmp_path, "chaos", stream, kill_plan(base, kills)
        )
        assert stats["kills"] == len(kills)
        assert stats["torn_kills"] == sum(1 for _, _, m in kills if m == "torn")
        assert journals == ref_journals
        assert chaos.final_schedule() == ref.final_schedule()
        assert chaos.metrics_snapshot() == ref.metrics_snapshot()

    def test_killing_one_shard_leaves_others_bytes_untouched(self, tmp_path):
        stream = make_stream(8)
        svc = ShardedService(
            make_chargers(), n_shards=4, field=FIELD, config=CONFIG,
            journal_dir=tmp_path / "live", journal_sync=False,
        )
        half = len(stream) // 2
        for r in stream[:half]:
            svc.submit(r)
        before = {
            sid: (tmp_path / "live" / shard_journal_name(sid)).read_bytes()
            for sid in svc.kernels
        }
        survivor_ids = [sid for sid in svc.kernels if sid != 1]
        svc.kill_and_recover_shard(1, torn=False)
        after = {
            sid: (tmp_path / "live" / shard_journal_name(sid)).read_bytes()
            for sid in svc.kernels
        }
        for sid in survivor_ids:
            assert after[sid] == before[sid]
        # The recovered shard keeps accepting its share of the stream.
        for r in stream[half:]:
            svc.submit(r)
        svc.drain()
        svc.close()
        assert sum(svc.counts().values()) == len(stream)

    def test_kill_against_empty_shard_is_skipped(self, tmp_path):
        stream = make_stream(2, n=6)
        chargers = [Charger(charger_id="c0", position=Point(25.0, 25.0))]
        svc = ShardedService(
            chargers, n_shards=4, field=FIELD, config=CONFIG,
            journal_dir=tmp_path / "sparse", journal_sync=False,
        )
        plan = kill_plan(FaultPlan(), [(3, 100.0, None)])  # no kernel there
        _, stats = drive_sharded(svc, stream, plan)
        svc.close()
        assert stats == {"kills": 0, "torn_kills": 0, "skipped_kills": 1}

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(stream_seed=st.integers(0, 10_000),
           kill_shard=st.integers(0, 3),
           frac=st.floats(0.1, 0.9),
           torn=st.booleans())
    def test_random_kill_points_converge(self, stream_seed, kill_shard, frac,
                                         torn, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("shardchaos")
        stream = make_stream(stream_seed, n=12)
        t_kill = frac * stream[-1].submitted_at
        _, _, ref_journals = run_to_journals(tmp_path, "ref", stream, FaultPlan())
        mode = "torn" if torn else None
        chaos, stats, journals = run_to_journals(
            tmp_path, "chaos", stream,
            kill_plan(FaultPlan(), [(kill_shard, t_kill, mode)]),
        )
        assert stats["kills"] == 1
        assert journals == ref_journals


class TestShardKillPlans:
    def test_generate_is_deterministic(self):
        a = FaultPlan.generate_shard_kills(7, 8, horizon=1000.0)
        b = FaultPlan.generate_shard_kills(7, 8, horizon=1000.0)
        assert a == b
        for e in a.shard_kills():
            assert e.kind == "shard_kill"
            assert 0 <= int(e.target) < 8
            assert 0.0 <= e.t < 1000.0

    def test_keyed_kills_stable_under_shard_count(self):
        # Shard s's fate is a pure function of (seed, s): growing the
        # count never reshuffles the shards both counts share.
        small = {e.target: e for e in
                 FaultPlan.generate_shard_kills(3, 4, horizon=500.0)}
        large = {e.target: e for e in
                 FaultPlan.generate_shard_kills(3, 16, horizon=500.0)}
        for target, event in small.items():
            assert target in large
            assert large[target].t == event.t
            assert large[target].mode == event.mode

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.generate_shard_kills(0, 0, horizon=10.0)
        with pytest.raises(ConfigurationError):
            FaultPlan.generate_shard_kills(0, 2, horizon=-1.0)
        with pytest.raises(ConfigurationError):
            FaultEvent(t=0.0, kind="shard_kill", target="1", mode="sideways")

    def test_shard_kills_are_not_kernel_events(self):
        plan = FaultPlan.generate_shard_kills(1, 8, horizon=100.0)
        assert plan.shard_kills()
        assert plan.kernel_events() == []
