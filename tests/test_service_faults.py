"""Failure semantics in the service kernel: outages, cancels, no-shows.

The contracts under test (docs/FAULTS.md):

- A charger outage evacuates its coalitions; the members are re-quoted
  at the next epoch boundary **against their original admission quote**
  (the binding price ceiling).  Holds → re-fold through the incremental
  planner; broken → ``rejected`` with reason ``charger_failed``.  The
  original quote is never replaced by a worse one.
- Cancellations and no-shows remove members through the blessed
  incremental-plan paths, re-share the session cost among the
  survivors, and journal a compensating input record so recovery stays
  byte-identical.
- Fault events are inputs: idempotent per ``(event, target, at)`` key,
  journaled, and replayed by :meth:`ChargingService.recover`.
- Boundary processing order is pinned: completions → departures →
  expirations → fold, so a deadline exactly on a departure boundary is
  *met*, not expired.
"""

from __future__ import annotations

import pytest

from repro.core import Device
from repro.errors import ServiceError
from repro.geometry import Point
from repro.service import (
    ChargingRequest,
    ChargingService,
    Journal,
    RequestState,
    ServiceConfig,
)
from repro.service.admission import REASON_CHARGER_FAILED
from repro.core.costsharing import EgalitarianSharing, ProportionalSharing
from repro.wpt import Charger

CONFIG = ServiceConfig(epoch=60.0, window=120.0)


def make_chargers():
    return [
        Charger(charger_id="c0", position=Point(20.0, 20.0)),
        Charger(charger_id="c1", position=Point(80.0, 80.0)),
    ]


def request(rid, x=10.0, y=10.0, t=1.0, demand=20e3, deadline=None, max_price=None):
    return ChargingRequest(
        request_id=rid,
        device=Device(device_id=f"dev-{rid}", position=Point(x, y), demand=demand),
        submitted_at=t,
        deadline=deadline,
        max_price=max_price,
    )


def service(**kwargs):
    kwargs.setdefault("config", CONFIG)
    return ChargingService(make_chargers(), **kwargs)


class TestChargerOutage:
    def test_outage_evacuates_and_rejects_when_ceiling_breaks(self):
        svc = service()
        svc.submit(request("r1", x=10.0, y=10.0, t=5.0))
        svc.advance(60.0)
        assert svc.request_state("r1") == RequestState.GROUPED
        ceiling = svc.requests["r1"].quote
        assert svc.fail_charger("c0", at=70.0)
        assert svc.request_state("r1") == RequestState.EVACUATING
        svc.advance(120.0)
        # The only surviving charger is far away: the re-quote breaks the
        # original ceiling, so the request is rejected — never overcharged.
        record = svc.requests["r1"]
        assert record.state == RequestState.REJECTED
        assert record.reason == REASON_CHARGER_FAILED
        assert record.quote == ceiling  # the original quote was kept
        counters = svc.metrics_snapshot()["counters"]
        assert counters["charger_failures"] == 1
        assert counters["evacuated"] == 1

    def test_recovered_charger_refolds_under_the_original_quote(self):
        svc = service()
        svc.submit(request("r1", t=5.0))
        svc.advance(60.0)
        ceiling = svc.requests["r1"].quote
        svc.fail_charger("c0", at=70.0)
        svc.restore_charger("c0", at=90.0)
        svc.advance(120.0)
        record = svc.requests["r1"]
        assert record.state == RequestState.GROUPED
        assert record.quote == ceiling
        svc.drain()
        assert record.state == RequestState.DONE
        assert record.realized_cost <= ceiling + svc.planner.tol
        counters = svc.metrics_snapshot()["counters"]
        assert counters["refolded"] == 1
        assert counters["charger_recoveries"] == 1

    def test_all_chargers_down_rejects_at_submission(self):
        svc = service()
        svc.fail_charger("c0", at=1.0)
        svc.fail_charger("c1", at=1.0)
        assert svc.submit(request("r1", t=5.0)) == RequestState.REJECTED
        assert svc.requests["r1"].reason == REASON_CHARGER_FAILED

    def test_down_charger_never_receives_placements(self):
        svc = service()
        svc.fail_charger("c0", at=0.5)
        svc.submit(request("r1", x=10.0, y=10.0, t=5.0))  # nearest is c0
        svc.drain()
        for session in svc.final_schedule():
            assert session["charger"] == "c1"

    def test_fault_events_are_idempotent(self):
        svc = service()
        assert svc.fail_charger("c0", at=10.0) is True
        assert svc.fail_charger("c0", at=10.0) is False  # replayed key
        assert svc.fail_charger("c0", at=11.0) is False  # already down
        assert svc.restore_charger("c0", at=20.0) is True
        assert svc.restore_charger("c0", at=20.0) is False
        assert svc.restore_charger("c0", at=21.0) is False  # already up
        counters = svc.metrics_snapshot()["counters"]
        assert counters["charger_failures"] == 1
        assert counters["charger_recoveries"] == 1

    def test_unknown_charger_is_a_typed_error(self):
        svc = service()
        with pytest.raises(ServiceError):
            svc.fail_charger("c99")

    def test_gauges_track_availability(self):
        svc = service()
        assert svc.metrics_snapshot()["gauges"]["chargers_available"] == 2
        svc.fail_charger("c0", at=1.0)
        assert svc.metrics_snapshot()["gauges"]["chargers_available"] == 1

    def test_drain_resolves_evacuating_requests(self):
        svc = service()
        for k in range(4):
            svc.submit(request(f"r{k}", t=1.0 + k))
        svc.advance(60.0)
        svc.fail_charger("c0", at=70.0)
        svc.drain()
        for rid, record in svc.requests.items():
            assert record.state in RequestState.TERMINAL, (rid, record.state)


class TestCancellation:
    def test_cancel_queued_request(self):
        svc = service()
        svc.submit(request("r1", t=5.0))
        assert svc.cancel("r1", at=10.0) == RequestState.CANCELLED
        assert svc.request_state("r1") == RequestState.CANCELLED
        svc.drain()  # nothing left: the queue entry is gone
        assert svc.final_schedule() == []
        counters = svc.metrics_snapshot()["counters"]
        assert counters["cancelled"] == 1
        assert counters["cancelled.cancelled"] == 1

    @pytest.mark.parametrize("scheme", [EgalitarianSharing(), ProportionalSharing()])
    def test_cancel_grouped_member_reshapes_the_session(self, scheme):
        svc = ChargingService(make_chargers(), scheme=scheme, config=CONFIG)
        # Two nearby devices pair up on c0; cancelling one re-shares the
        # session cost among the survivor (and repairs its rationality).
        svc.submit(request("r1", x=10.0, y=10.0, t=1.0))
        svc.submit(request("r2", x=12.0, y=10.0, t=2.0))
        svc.advance(60.0)
        assert svc.request_state("r1") == RequestState.GROUPED
        assert svc.cancel("r1", at=70.0) == RequestState.CANCELLED
        svc.drain()
        record = svc.requests["r2"]
        assert record.state == RequestState.DONE
        assert record.realized_cost <= record.quote + svc.planner.tol
        sessions = svc.final_schedule()
        assert ["dev-r2"] in [s["members"] for s in sessions]
        assert all("dev-r1" not in s["members"] for s in sessions)

    def test_no_show_uses_its_own_reason_counter(self):
        svc = service()
        svc.submit(request("r1", t=5.0))
        svc.cancel("r1", at=5.0, reason="no-show")
        counters = svc.metrics_snapshot()["counters"]
        assert counters["cancelled.no-show"] == 1

    def test_cancel_unknown_request_returns_none(self):
        svc = service()
        assert svc.cancel("nope") is None

    def test_cancel_after_departure_is_too_late(self):
        svc = service()
        svc.submit(request("r1", t=5.0))
        svc.advance(180.0)  # departs at 180
        state = svc.request_state("r1")
        assert state == RequestState.CHARGING
        assert svc.cancel("r1", at=200.0) == RequestState.CHARGING
        svc.drain()
        assert svc.request_state("r1") == RequestState.DONE
        assert svc.metrics_snapshot()["counters"]["cancelled"] == 0

    def test_cancel_is_idempotent_per_key(self):
        svc = service(journal_path=None)
        svc.submit(request("r1", t=5.0))
        first = svc.cancel("r1", at=10.0)
        again = svc.cancel("r1", at=10.0)
        assert (first, again) == (RequestState.CANCELLED, RequestState.CANCELLED)
        assert svc.metrics_snapshot()["counters"]["cancelled"] == 1

    def test_cancel_evacuating_request(self):
        svc = service()
        svc.submit(request("r1", t=5.0))
        svc.advance(60.0)
        svc.fail_charger("c0", at=70.0)
        assert svc.request_state("r1") == RequestState.EVACUATING
        assert svc.cancel("r1", at=80.0) == RequestState.CANCELLED
        svc.drain()
        assert svc.request_state("r1") == RequestState.CANCELLED


class TestEvacuationExpiry:
    def test_outage_can_cost_a_tight_deadline_its_slot(self):
        # Deadline 180 was feasible (fold at 60, depart at 180), but the
        # outage forces a re-fold at 120, which restarts the commitment
        # window — the new departure (240) misses the deadline, so the
        # request expires instead of being silently served late.
        svc = service()
        svc.submit(request("r1", t=5.0, deadline=180.0))
        svc.advance(60.0)
        svc.fail_charger("c0", at=70.0)
        svc.restore_charger("c0", at=75.0)
        svc.advance(120.0)
        assert svc.request_state("r1") == RequestState.GROUPED  # refolded
        svc.advance(180.0)
        assert svc.request_state("r1") == RequestState.EXPIRED


class TestBoundaryOrder:
    def test_epoch_steps_run_in_pinned_order(self, monkeypatch):
        svc = service()
        order = []
        for name in ("_process_completions", "_process_departures",
                     "_process_expirations", "_fold"):
            original = getattr(svc, name)

            def wrapper(*args, _name=name, _original=original):
                order.append(_name)
                return _original(*args)

            monkeypatch.setattr(svc, name, wrapper)
        svc.submit(request("r1", t=5.0))
        svc.advance(60.0)
        # `advance` also runs stray completion sweeps outside the epoch
        # loop; the pinned order is the four steps around the first fold.
        fold = order.index("_fold")
        assert order[fold - 3 : fold + 1] == [
            "_process_completions", "_process_departures",
            "_process_expirations", "_fold",
        ]

    def test_deadline_exactly_on_departure_boundary_is_met(self):
        # Fold at 60, window 120 → departs at 180.  A deadline of exactly
        # 180 can still be met *because departures run before
        # expirations*; flipping that order would expire it.
        svc = service()
        svc.submit(request("r1", t=5.0, deadline=180.0))
        svc.advance(180.0)
        assert svc.request_state("r1") == RequestState.CHARGING
        svc.drain()
        assert svc.request_state("r1") == RequestState.DONE


class TestFaultRecovery:
    def test_fault_events_replay_byte_identical(self, tmp_path):
        path = tmp_path / "svc.jsonl"
        svc = ChargingService(make_chargers(), config=CONFIG, journal_path=path)
        svc.submit(request("r1", t=5.0))
        svc.submit(request("r2", x=70.0, y=70.0, t=6.0))
        svc.advance(60.0)
        svc.fail_charger("c0", at=70.0)
        svc.cancel("r2", at=80.0)
        svc.restore_charger("c0", at=90.0)
        svc.drain()
        svc.journal.close()
        raw = path.read_bytes()
        rec = ChargingService.recover(path, make_chargers(), config=CONFIG)
        rec.journal.close()
        assert path.read_bytes() == raw
        assert rec.metrics_snapshot() == svc.metrics_snapshot()
        assert rec.final_schedule() == svc.final_schedule()
        assert rec.counts() == svc.counts()

    def test_truncated_journal_with_faults_recovers_byte_identical(self, tmp_path):
        path = tmp_path / "svc.jsonl"
        svc = ChargingService(make_chargers(), config=CONFIG, journal_path=path)
        svc.submit(request("r1", t=5.0))
        svc.advance(60.0)
        svc.fail_charger("c0", at=70.0)
        svc.restore_charger("c0", at=90.0)
        svc.advance(120.0)
        svc.drain()
        svc.journal.close()
        raw = path.read_bytes()
        lines = raw.decode().splitlines(keepends=True)
        # Kill right after the charger_down record: the outage is in the
        # journal, its consequences are re-derived, the rest is re-fed.
        cut = next(
            k for k, line in enumerate(lines) if '"charger_down"' in line
        ) + 1
        path.write_bytes("".join(lines[:cut]).encode())
        rec = ChargingService.recover(path, make_chargers(), config=CONFIG)
        assert rec.request_state("r1") == RequestState.EVACUATING
        # Re-feed the full input stream: everything already journaled is
        # a no-op, the tail replays, and the journal converges.
        rec.submit(request("r1", t=5.0))
        rec.fail_charger("c0", at=70.0)
        rec.restore_charger("c0", at=90.0)
        rec.advance(120.0)
        rec.drain()
        rec.journal.close()
        assert path.read_bytes() == raw
