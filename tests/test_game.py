"""Unit tests for the coalition-formation-game toolkit."""

from __future__ import annotations

import pytest

from repro.core import (
    EgalitarianSharing,
    Schedule,
    Session,
    ccsa,
    comprehensive_cost,
    noncooperation,
)
from repro.game import (
    CoalitionStructure,
    PotentialTrace,
    SelfishSwitch,
    SociallyAwareSwitch,
    blocking_moves,
    candidate_moves,
    is_nash_equilibrium,
)

SCHEME = EgalitarianSharing()


class TestCoalitionStructure:
    def test_singletons_match_noncooperation(self, tiny_instance):
        cs = CoalitionStructure.singletons(tiny_instance, SCHEME)
        assert cs.n_coalitions == 4
        nca = noncooperation(tiny_instance)
        assert cs.total_cost == pytest.approx(comprehensive_cost(nca, tiny_instance))
        cs.check_invariants()

    def test_from_schedule_roundtrip(self, tiny_instance):
        sched = ccsa(tiny_instance)
        cs = CoalitionStructure.from_schedule(tiny_instance, SCHEME, sched)
        assert cs.total_cost == pytest.approx(comprehensive_cost(sched, tiny_instance))
        assert cs.to_schedule("x").canonical() == sched.canonical()

    def test_move_to_existing_coalition(self, tiny_instance):
        cs = CoalitionStructure.singletons(tiny_instance, SCHEME)
        target = cs.coalition_of(1)
        before = cs.total_cost
        predicted = cs.total_cost_if_moved(0, target.cid, target.charger)
        cs.move(0, target.cid, target.charger)
        cs.check_invariants()
        assert cs.coalition_of(0) is cs.coalition_of(1)
        assert cs.n_coalitions == 3
        assert cs.total_cost == pytest.approx(predicted)
        assert cs.total_cost != pytest.approx(before)  # base fee merged

    def test_move_to_new_singleton(self, tiny_instance):
        cs = CoalitionStructure.singletons(tiny_instance, SCHEME)
        target = cs.coalition_of(1)
        cs.move(0, target.cid, target.charger)
        cs.move(0, None, 1)  # leave and found a singleton at charger B
        cs.check_invariants()
        assert cs.coalition_of(0).size == 1
        assert cs.coalition_of(0).charger == 1

    def test_empty_source_coalition_is_dropped(self, tiny_instance):
        cs = CoalitionStructure.singletons(tiny_instance, SCHEME)
        n0 = cs.n_coalitions
        target = cs.coalition_of(1)
        cs.move(0, target.cid, target.charger)
        assert cs.n_coalitions == n0 - 1

    def test_capacity_blocks_join(self, tiny_instance):
        # Capacity is 3: pack 0,1,2 together; device 3 cannot join.
        cs = CoalitionStructure.singletons(tiny_instance, SCHEME)
        c = cs.coalition_of(0)
        cs.move(1, c.cid, c.charger)
        cs.move(2, c.cid, c.charger)
        assert cs.cost_if_joined(3, c.cid, c.charger) == float("inf")
        with pytest.raises(ValueError):
            cs.move(3, c.cid, c.charger)

    def test_move_to_own_coalition_rejected(self, tiny_instance):
        cs = CoalitionStructure.singletons(tiny_instance, SCHEME)
        c = cs.coalition_of(0)
        with pytest.raises(ValueError):
            cs.move(0, c.cid, c.charger)

    def test_individual_cost_matches_scheme(self, tiny_instance):
        cs = CoalitionStructure.singletons(tiny_instance, SCHEME)
        cost = cs.individual_cost(0)
        assert cost == pytest.approx(tiny_instance.standalone_cost(0))

    def test_state_key_identifies_structures(self, tiny_instance):
        a = CoalitionStructure.singletons(tiny_instance, SCHEME)
        b = CoalitionStructure.singletons(tiny_instance, SCHEME)
        assert a.state_key() == b.state_key()
        t = b.coalition_of(1)
        b.move(0, t.cid, t.charger)
        assert a.state_key() != b.state_key()


class TestCandidateMoves:
    def test_enumerates_joins_and_singletons(self, tiny_instance):
        cs = CoalitionStructure.singletons(tiny_instance, SCHEME)
        moves = list(candidate_moves(cs, 0))
        joins = [m for m in moves if m.target is not None]
        news = [m for m in moves if m.target is None]
        assert len(joins) == 3  # three other singleton coalitions
        # singleton device: a new singleton at its own charger is not a move
        assert len(news) == tiny_instance.n_chargers - 1

    def test_deltas_are_consistent(self, tiny_instance):
        cs = CoalitionStructure.singletons(tiny_instance, SCHEME)
        own_now = cs.individual_cost(0)
        for m in candidate_moves(cs, 0):
            if m.target is not None:
                predicted = cs.cost_if_joined(0, m.target, m.charger)
                assert m.own_delta == pytest.approx(predicted - own_now)


class TestSwitchRules:
    def test_socially_aware_requires_both_improvements(self):
        from repro.game.switching import SwitchMove

        rule = SociallyAwareSwitch()
        good = SwitchMove(0, None, 0, own_delta=-1.0, total_delta=-1.0)
        selfish_only = SwitchMove(0, None, 0, own_delta=-1.0, total_delta=+1.0)
        social_only = SwitchMove(0, None, 0, own_delta=+1.0, total_delta=-1.0)
        assert rule.permits(good)
        assert not rule.permits(selfish_only)
        assert not rule.permits(social_only)

    def test_selfish_ignores_total(self):
        from repro.game.switching import SwitchMove

        rule = SelfishSwitch()
        assert rule.permits(SwitchMove(0, None, 0, own_delta=-1.0, total_delta=+5.0))
        assert not rule.permits(SwitchMove(0, None, 0, own_delta=+0.1, total_delta=-5.0))

    def test_tolerance_suppresses_micro_moves(self):
        from repro.game.switching import SwitchMove

        rule = SelfishSwitch(tol=1e-3)
        assert not rule.permits(SwitchMove(0, None, 0, own_delta=-1e-6, total_delta=0.0))

    def test_best_move_picks_largest_improvement(self, tiny_instance):
        cs = CoalitionStructure.singletons(tiny_instance, SCHEME)
        rule = SociallyAwareSwitch()
        move = rule.best_move(cs, 0)
        assert move is not None
        # Pairing with the co-located device 1 at charger A is the win.
        assert move.target == cs.coalition_of(1).cid

    def test_negative_tol_rejected(self):
        with pytest.raises(ValueError):
            SelfishSwitch(tol=-1.0)


class TestEquilibrium:
    def test_blocking_moves_on_singletons(self, tiny_instance):
        cs = CoalitionStructure.singletons(tiny_instance, SCHEME)
        rule = SociallyAwareSwitch()
        assert not is_nash_equilibrium(cs, rule)
        moves = blocking_moves(cs, rule)
        assert moves and all(m.own_delta < 0 and m.total_delta < 0 for m in moves)

    def test_limit_caps_enumeration(self, tiny_instance):
        cs = CoalitionStructure.singletons(tiny_instance, SCHEME)
        assert len(blocking_moves(cs, SociallyAwareSwitch(), limit=1)) == 1

    def test_paired_structure_is_equilibrium(self, tiny_instance):
        sched = Schedule([Session(0, {0, 1}), Session(1, {2, 3})])
        cs = CoalitionStructure.from_schedule(tiny_instance, SCHEME, sched)
        assert is_nash_equilibrium(cs, SociallyAwareSwitch())


class TestPotentialTrace:
    def test_strictly_decreasing_detection(self):
        t = PotentialTrace()
        for v in (10.0, 8.0, 5.0):
            t.record(v)
        assert t.is_strictly_decreasing()
        assert t.n_switches == 2
        assert t.initial == 10.0 and t.final == 5.0
        assert t.total_descent() == 5.0

    def test_non_decreasing_detected(self):
        t = PotentialTrace()
        for v in (10.0, 11.0):
            t.record(v)
        assert not t.is_strictly_decreasing()

    def test_single_point_is_trivially_decreasing(self):
        t = PotentialTrace()
        t.record(1.0)
        assert t.is_strictly_decreasing()

    def test_empty_trace_raises(self):
        t = PotentialTrace()
        with pytest.raises(ValueError):
            _ = t.initial
        with pytest.raises(ValueError):
            _ = t.final
