"""Tests for the structured arrival-trace generators."""

from __future__ import annotations


import pytest

from repro.errors import ConfigurationError
from repro.geometry import Field, grid_deployment
from repro.online import (
    BatchScheduler,
    burst_arrivals,
    compare_policies,
    diurnal_arrivals,
)
from repro.wpt import Charger, PowerLawTariff

FIELD = Field.square(300.0)


class TestDiurnalArrivals:
    def test_count_ordering_and_bounds(self):
        arrivals = diurnal_arrivals(60, FIELD, rng=1)
        assert len(arrivals) == 60
        times = [a.time for a in arrivals]
        assert times == sorted(times)
        assert all(FIELD.contains(a.device.position) for a in arrivals)

    def test_seeded(self):
        a = diurnal_arrivals(20, FIELD, rng=5)
        b = diurnal_arrivals(20, FIELD, rng=5)
        assert [x.time for x in a] == [x.time for x in b]

    def test_peak_hours_are_busier_than_trough(self):
        # Size the trace to roughly one day so both the 2 am trough and the
        # 2 pm peak are visited, then compare same-width windows.
        arrivals = diurnal_arrivals(
            900, FIELD, peak_rate=0.02, trough_ratio=0.1, peak_hour=14.0, rng=0
        )
        assert arrivals[-1].time > 15 * 3600  # trace reaches past the peak

        def count_between(h_lo, h_hi):
            return sum(
                1 for a in arrivals if h_lo * 3600 <= a.time <= h_hi * 3600
            )

        assert count_between(12, 16) > 2 * count_between(0, 4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            diurnal_arrivals(-1, FIELD)
        with pytest.raises(ConfigurationError):
            diurnal_arrivals(5, FIELD, peak_rate=0.0)
        with pytest.raises(ConfigurationError):
            diurnal_arrivals(5, FIELD, trough_ratio=0.0)


class TestBurstArrivals:
    def test_burst_structure(self):
        arrivals = burst_arrivals(3, 8, FIELD, burst_spacing=1000.0, rng=2)
        assert len(arrivals) == 24
        times = [a.time for a in arrivals]
        assert times == sorted(times)
        # Bursts are temporally separated: arrivals cluster near multiples
        # of the spacing.
        for a in arrivals:
            nearest_burst = round(a.time / 1000.0) * 1000.0
            assert abs(a.time - nearest_burst) < 400.0

    def test_bursts_are_spatially_clustered(self):
        arrivals = burst_arrivals(2, 10, FIELD, cluster_spread=0.02, rng=3)
        first = [a for a in arrivals if a.time < 2700.0]
        xs = [a.device.position.x for a in first]
        ys = [a.device.position.y for a in first]
        # Cluster diameter far below the field side.
        assert max(xs) - min(xs) < 100.0
        assert max(ys) - min(ys) < 100.0

    def test_zero_bursts(self):
        assert burst_arrivals(0, 5, FIELD) == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            burst_arrivals(1, 0, FIELD)
        with pytest.raises(ConfigurationError):
            burst_arrivals(1, 3, FIELD, burst_spacing=0.0)

    def test_batching_near_clairvoyant_on_bursts(self):
        # Bursty demand is the batcher's best case: each burst fits one
        # window, so the online cost approaches the offline optimum.
        chargers = [
            Charger(
                f"c{j}", p,
                tariff=PowerLawTariff(base=30.0, unit=2e-3, exponent=0.9),
                efficiency=0.8, capacity=6,
            )
            for j, p in enumerate(grid_deployment(FIELD, 4))
        ]
        arrivals = burst_arrivals(4, 10, FIELD, rng=1)
        out = compare_policies(
            {"batch": BatchScheduler(window=300.0)}, arrivals, chargers
        )
        assert out["batch"].competitive_ratio < 1.1
