"""The incremental-cost engine: cache coherence, fast-path agreement, goldens.

Three layers of defence for the CCSGA hot-path optimization:

1. **Property tests** (hypothesis): after any random sequence of legal
   ``move()`` calls, every cached coalition aggregate, the cached total
   cost, and the Zobrist hash agree with from-scratch recomputation
   (``check_invariants``), and the O(1) hypothetical-cost fast paths
   agree with the definitional slow computation.
2. **Golden tests**: ``ccsga()`` produces the exact same schedules,
   switch counts, sweep counts, and Nash certificates as the seed
   (pre-engine) implementation on the serialized fixtures and seeded
   random workloads — the optimization is behavior-preserving.  Traces
   are compared to 1e-9 relative tolerance: the engine sums coalition
   aggregates in sorted member order while the seed summed in set order,
   which shifts potential values by a few ulp without ever changing a
   switch decision.
3. **Unit tests** for the new knobs: ``has_potential``, the Zobrist
   hash, and the singleton-matrix caches.

Regenerate the golden file deliberately via
``tests/fixtures/capture_ccsga_golden.py`` if dynamics behaviour changes
on purpose.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    EgalitarianSharing,
    ProportionalSharing,
    ShapleySharing,
    ccsga,
)
from repro.game import (
    CoalitionStructure,
    SelfishSwitch,
    SociallyAwareSwitch,
    SwitchRule,
    candidate_moves,
)
from repro.io import instance_from_dict
from repro.workloads import quick_instance

FIXTURES = Path(__file__).parent / "fixtures"

SCHEMES = {
    "egalitarian": EgalitarianSharing(),
    "proportional": ProportionalSharing(),
}


def load_fixture(name):
    with open(FIXTURES / f"{name}.json") as fh:
        return instance_from_dict(json.load(fh))


# --------------------------------------------------------------------- #
# property tests: cache coherence under random legal move sequences


def _apply_random_moves(structure, data, n_moves):
    """Drive *structure* through a sequence of legal hypothesis-chosen moves."""
    instance = structure.instance
    for _ in range(n_moves):
        device = data.draw(
            st.integers(min_value=0, max_value=instance.n_devices - 1), label="device"
        )
        src = structure.coalition_of(device)
        options = [
            c.cid
            for c in structure.coalitions()
            if c is not src and instance.chargers[c.charger].admits(c.size + 1)
        ]
        # Founding a singleton is encoded as (None, charger).
        targets = [(cid, None) for cid in options] + [
            (None, j)
            for j in range(instance.n_chargers)
            if not (src.size == 1 and j == src.charger)
        ]
        if not targets:
            continue
        idx = data.draw(
            st.integers(min_value=0, max_value=len(targets) - 1), label="target"
        )
        target, charger = targets[idx]
        if charger is None:
            charger = structure._coalitions[target].charger
        predicted = structure.total_cost_if_moved(device, target, charger)
        structure.move(device, target, charger)
        assert structure.total_cost == pytest.approx(predicted, rel=1e-9)


class TestCacheCoherence:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_caches_survive_random_move_sequences(self, data):
        seed = data.draw(st.integers(min_value=0, max_value=2**16), label="seed")
        scheme = data.draw(st.sampled_from(sorted(SCHEMES)), label="scheme")
        instance = quick_instance(n_devices=8, n_chargers=3, seed=seed, capacity=4)
        structure = CoalitionStructure.singletons(instance, SCHEMES[scheme])
        structure.check_invariants()
        _apply_random_moves(structure, data, n_moves=12)
        # The one assertion that matters: every cached aggregate, the total
        # cost, and the Zobrist hash agree with from-scratch recomputation.
        structure.check_invariants()
        assert structure.zobrist_hash() == structure._zobrist_from_scratch()

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_fast_paths_agree_with_definitional_costs(self, data):
        seed = data.draw(st.integers(min_value=0, max_value=2**16), label="seed")
        scheme_name = data.draw(st.sampled_from(sorted(SCHEMES)), label="scheme")
        scheme = SCHEMES[scheme_name]
        instance = quick_instance(n_devices=7, n_chargers=3, seed=seed, capacity=4)
        structure = CoalitionStructure.singletons(instance, scheme)
        _apply_random_moves(structure, data, n_moves=8)

        for device in range(instance.n_devices):
            src = structure.coalition_of(device)
            # individual_cost fast path vs definitional shares().
            shares = scheme.shares(instance, sorted(src.members), src.charger)
            assert structure.individual_cost(device) == pytest.approx(
                shares[device] + instance.moving_cost(device, src.charger), rel=1e-9
            )
            # leave_delta vs from-scratch group costs.
            expected_leave = instance.group_cost(
                src.members - {device}, src.charger
            ) - instance.group_cost(src.members, src.charger)
            assert structure.leave_delta(device) == pytest.approx(
                expected_leave, rel=1e-9, abs=1e-9
            )
            for coalition in structure.coalitions():
                if coalition is src:
                    continue
                joined = coalition.members | {device}
                admissible = instance.chargers[coalition.charger].admits(
                    coalition.size + 1
                )
                got_own = structure.cost_if_joined(
                    device, coalition.cid, coalition.charger
                )
                got_total = structure.total_cost_if_moved(
                    device, coalition.cid, coalition.charger
                )
                if not admissible:
                    assert got_own == float("inf")
                    assert got_total == float("inf")
                    continue
                exp_shares = scheme.shares(
                    instance, sorted(joined), coalition.charger
                )
                assert got_own == pytest.approx(
                    exp_shares[device]
                    + instance.moving_cost(device, coalition.charger),
                    rel=1e-9,
                )
                exp_total = (
                    sum(
                        instance.group_cost(c.members, c.charger)
                        for c in structure.coalitions()
                        if c is not src and c is not coalition
                    )
                    + instance.group_cost(src.members - {device}, src.charger)
                    + instance.group_cost(joined, coalition.charger)
                )
                assert got_total == pytest.approx(exp_total, rel=1e-9)

    def test_fallback_scheme_without_share_of_still_works(self, tiny_instance):
        # Shapley has no O(1) aggregate fast path; the engine must fall
        # back to full share computation and stay coherent.
        scheme = ShapleySharing(exact_limit=4)
        structure = CoalitionStructure.singletons(tiny_instance, scheme)
        moves = list(candidate_moves(structure, 0))
        assert moves
        target = next(m for m in moves if m.target is not None)
        shares = scheme.shares(
            tiny_instance,
            sorted(structure._coalitions[target.target].members | {0}),
            target.charger,
        )
        assert structure.cost_if_joined(
            0, target.target, target.charger
        ) == pytest.approx(
            shares[0] + tiny_instance.moving_cost(0, target.charger), rel=1e-9
        )
        structure.move(0, target.target, target.charger)
        structure.check_invariants()


# --------------------------------------------------------------------- #
# Zobrist hash semantics


class TestZobristHash:
    def test_hash_changes_on_move_and_restores_on_undo(self, tiny_instance):
        cs = CoalitionStructure.singletons(tiny_instance, SCHEMES["egalitarian"])
        h0 = cs.zobrist_hash()
        src = cs.coalition_of(0)
        target = next(c for c in cs.coalitions() if c is not src)
        cs.move(0, target.cid, target.charger)
        assert cs.zobrist_hash() != h0
        cs.move(0, None, src.charger)
        # Back to the identical partition: singleton {0} at its old charger.
        assert cs.zobrist_hash() == h0
        assert cs.zobrist_hash() == cs._zobrist_from_scratch()

    def test_equal_partitions_hash_equal_across_structures(self, tiny_instance):
        a = CoalitionStructure.singletons(tiny_instance, SCHEMES["egalitarian"])
        b = CoalitionStructure.singletons(tiny_instance, SCHEMES["egalitarian"])
        assert a.zobrist_hash() == b.zobrist_hash()
        assert a.state_key() == b.state_key()
        t = next(c for c in b.coalitions() if 0 not in c.members)
        b.move(0, t.cid, t.charger)
        assert a.zobrist_hash() != b.zobrist_hash()

    def test_grouping_matters_not_just_assignment(self, tiny_instance):
        # {0,1} and {2} at charger 0 must hash differently from {0} and
        # {1,2} at charger 0 even though every device sits at charger 0.
        scheme = SCHEMES["egalitarian"]
        a = CoalitionStructure(tiny_instance, scheme)
        a._create(0, {0, 1})
        a._create(0, {2})
        a._create(1, {3})
        b = CoalitionStructure(tiny_instance, scheme)
        b._create(0, {0})
        b._create(0, {1, 2})
        b._create(1, {3})
        assert a.zobrist_hash() != b.zobrist_hash()


# --------------------------------------------------------------------- #
# rule flags and driver bookkeeping


class TestHasPotential:
    def test_flags(self):
        assert SociallyAwareSwitch.has_potential is True
        assert SelfishSwitch.has_potential is False
        assert SwitchRule.has_potential is False

    def test_selfish_rule_still_converges_or_detects_cycles(self, tiny_instance):
        # The Zobrist-based detector must not false-positive on a run
        # that legitimately converges.
        result = ccsga(tiny_instance, rule=SelfishSwitch(), certify=False)
        assert result.sweeps >= 1

    def test_zobrist_detector_catches_actual_cycles(self, tiny_instance):
        from repro.errors import ConvergenceError

        class AlwaysSwitch(SwitchRule):
            # Permits every admissible move — with a finite state space the
            # dynamics must revisit a structure, and the driver must catch
            # it via the incrementally maintained hash rather than spin.
            name = "always"

            def permits(self, move):
                return True

        with pytest.raises(ConvergenceError):
            ccsga(tiny_instance, rule=AlwaysSwitch(), certify=False, max_sweeps=200)


# --------------------------------------------------------------------- #
# vectorized singleton machinery


class TestSingletonMatrices:
    def test_singleton_matrices_match_group_cost(self, tiny_instance):
        prices = tiny_instance.singleton_price_matrix()
        costs = tiny_instance.singleton_cost_matrix()
        assert prices.shape == (tiny_instance.n_devices, tiny_instance.n_chargers)
        for i in range(tiny_instance.n_devices):
            for j in range(tiny_instance.n_chargers):
                assert prices[i, j] == pytest.approx(
                    tiny_instance.charging_price([i], j), rel=1e-12
                )
                assert costs[i, j] == pytest.approx(
                    tiny_instance.group_cost([i], j), rel=1e-12
                )

    def test_charging_price_for_demand_matches_group_evaluation(self, tiny_instance):
        total = tiny_instance.total_demand([0, 1, 2])
        assert tiny_instance.charging_price_for_demand(total, 0) == pytest.approx(
            tiny_instance.charging_price([0, 1, 2], 0), rel=1e-12
        )
        assert tiny_instance.charging_price_for_demand(0.0, 0) == 0.0

    def test_vectorized_singletons_match_per_device_argmin(self, random_instance):
        cs = CoalitionStructure.singletons(random_instance, SCHEMES["egalitarian"])
        for i in range(random_instance.n_devices):
            best_j = min(
                range(random_instance.n_chargers),
                key=lambda j, i=i: (random_instance.group_cost([i], j), j),
            )
            assert cs.coalition_of(i).charger == best_j


# --------------------------------------------------------------------- #
# golden behaviour preservation


def _golden():
    with open(FIXTURES / "ccsga_golden.json") as fh:
        return json.load(fh)


GOLDEN = _golden()


def _instance_for(case_name):
    if case_name.startswith("quick_"):
        spec, _ = case_name.split("/")
        parts = dict(
            (kv[0], int(kv[1:])) for kv in spec.split("_")[1:]
        )  # quick_n24_m4_s7 -> {"n": 24, "m": 4, "s": 7}
        return quick_instance(
            n_devices=parts["n"], n_chargers=parts["m"], seed=parts["s"], capacity=6
        )
    return load_fixture(case_name.split("/")[0])


@pytest.mark.parametrize("case", sorted(GOLDEN))
class TestGoldenDynamics:
    def test_ccsga_output_matches_seed_implementation(self, case):
        instance = _instance_for(case)
        scheme = SCHEMES[case.rsplit("/", 1)[1]]
        result = ccsga(instance, scheme=scheme, certify=True)
        expected = GOLDEN[case]
        got_schedule = sorted(
            [s.charger, sorted(s.members)] for s in result.schedule.sessions
        )
        assert got_schedule == expected["schedule"]
        assert result.switches == expected["switches"]
        assert result.sweeps == expected["sweeps"]
        assert result.nash_certified == expected["nash_certified"]
        assert len(result.trace.values) == len(expected["trace"])
        for got, exp in zip(result.trace.values, expected["trace"]):
            assert got == pytest.approx(exp, rel=1e-9)
