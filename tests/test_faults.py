"""The fault-injection layer itself: plans, faulty journals, executors.

Three contracts under test:

1. **Fault plans are data**: seed-generated plans are deterministic,
   JSON round-trippable, and validated on construction.
2. **Journal failure semantics** (see ``docs/FAULTS.md``): a failed
   append never leaves a half-written record behind a success path —
   a clean ``OSError`` truncates back and raises the typed
   :class:`~repro.errors.JournalWriteError` without consuming ``seq``;
   a torn write leaves garbage that ``read_records`` drops as an
   invalid tail.
3. **Executor failure semantics**: one task failing (exception, worker
   crash, or hang) never takes down the run — every other task
   completes and is cached, retries stay within budget, and terminal
   failures surface as one typed :class:`~repro.errors.TaskFailedError`
   carrying the partial results.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import (
    ConfigurationError,
    InjectedFaultError,
    JournalWriteError,
    TaskFailedError,
)
from repro.experiments.exec import ParallelExecutor, ResultCache, SerialExecutor, Task
from repro.faults import FaultEvent, FaultPlan, FaultyExecutor, FaultyJournal
from repro.service.journal import Journal


class TestFaultEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(t=1.0, kind="meteor_strike", target="c0")

    def test_rejects_negative_and_nonfinite_times(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(t=-1.0, kind="charger_down", target="c0")
        with pytest.raises(ConfigurationError):
            FaultEvent(t=float("nan"), kind="charger_down", target="c0")

    def test_journal_write_requires_a_mode(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(t=0.0, kind="journal_write", target="5")
        with pytest.raises(ConfigurationError):
            FaultEvent(t=0.0, kind="journal_write", target="5", mode="sharknado")
        FaultEvent(t=0.0, kind="journal_write", target="5", mode="torn")

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(t=0.0, kind="worker_crash", target="0", count=0)


class TestFaultPlan:
    def test_events_are_time_sorted(self):
        plan = FaultPlan([
            FaultEvent(t=9.0, kind="charger_up", target="c0"),
            FaultEvent(t=3.0, kind="charger_down", target="c0"),
        ])
        assert [e.t for e in plan] == [3.0, 9.0]

    def test_generation_is_deterministic(self):
        kwargs = dict(charger_ids=["c0", "c1", "c2"], journal_faults=3, n_tasks=8)
        a = FaultPlan.generate(42, **kwargs)
        b = FaultPlan.generate(42, **kwargs)
        c = FaultPlan.generate(43, **kwargs)
        assert a == b
        assert a != c

    def test_round_trips_through_dict_and_file(self, tmp_path):
        plan = FaultPlan.generate(7, charger_ids=["c0", "c1"], journal_faults=2,
                                  n_tasks=4)
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_views_partition_by_consumer(self):
        plan = FaultPlan([
            FaultEvent(t=5.0, kind="charger_down", target="c0"),
            FaultEvent(t=0.0, kind="journal_write", target="3", mode="torn"),
            FaultEvent(t=0.0, kind="worker_crash", target="2", count=2),
            FaultEvent(t=8.0, kind="cancel", target="r1"),
        ])
        assert [e.kind for e in plan.kernel_events()] == ["charger_down", "cancel"]
        assert plan.journal_faults() == {3: "torn"}
        assert plan.worker_crashes() == {2: 2}

    def test_generation_leaves_one_charger_standing(self):
        plan = FaultPlan.generate(
            1, charger_ids=["c0", "c1", "c2"], outage_prob=1.0, journal_faults=0
        )
        downed = {e.target for e in plan if e.kind == "charger_down"}
        assert len(downed) <= 2


class TestJournalSync:
    def test_sync_flag_controls_fsync(self, tmp_path, monkeypatch):
        calls = []
        monkeypatch.setattr(os, "fsync", lambda fd: calls.append(fd))
        with Journal(tmp_path / "a.journal", sync=True) as j:
            j.append("open", 0.0, {})
            j.append("submit", 1.0, {"id": "r1"})
        synced = len(calls)
        with Journal(tmp_path / "b.journal", sync=False) as j:
            j.append("open", 0.0, {})
            j.append("submit", 1.0, {"id": "r1"})
        assert synced == 2 and len(calls) == 2

    def test_failed_append_truncates_and_does_not_consume_seq(self, tmp_path):
        path = tmp_path / "svc.journal"
        journal = FaultyJournal(path, fail_at={1: "enospc"})
        journal.append("open", 0.0, {})
        with pytest.raises(JournalWriteError):
            journal.append("submit", 1.0, {"id": "r1"})
        # The journal on disk is still a valid one-record prefix...
        records, torn = Journal.read_records(path)
        assert [r["event"] for r in records] == ["open"] and not torn
        # ...and the retry reuses the same seq and succeeds.
        assert journal.seq == 1
        assert journal.append("submit", 1.0, {"id": "r1"}) == 1
        records, torn = Journal.read_records(path)
        assert [r["event"] for r in records] == ["open", "submit"] and not torn
        assert journal.fired == [(1, "enospc")] and journal.fail_at == {}
        journal.close()

    def test_torn_write_leaves_an_invalid_tail(self, tmp_path):
        path = tmp_path / "svc.journal"
        journal = FaultyJournal(path, fail_at={1: "torn"})
        journal.append("open", 0.0, {})
        with pytest.raises(InjectedFaultError):
            journal.append("submit", 1.0, {"id": "r1"})
        # Half a record reached disk — the "process" is gone, no cleanup.
        raw = path.read_bytes()
        assert not raw.endswith(b"\n")
        records, torn = Journal.read_records(path)
        assert [r["event"] for r in records] == ["open"]
        assert torn
        journal.close()

    def test_closed_after_broken_restore_fails_loudly(self, tmp_path):
        from repro.errors import JournalError

        path = tmp_path / "svc.journal"
        journal = Journal(path)

        def explode(line):
            raise OSError("disk on fire")

        journal._write = explode
        journal._restore = lambda offset: setattr(journal, "_fh", None)
        with pytest.raises(JournalWriteError):
            journal.append("open", 0.0, {})
        with pytest.raises(JournalError):
            journal.append("open", 0.0, {})


def _tasks(kind, n, params=None, seed=5):
    return [Task(kind=kind, params=dict(params or {}), seed=seed, trial=t)
            for t in range(n)]


class TestExecutorFailureIsolation:
    def test_serial_executor_stays_fail_fast(self):
        tasks = _tasks("repro.faults.tasks:raise", 1)
        with pytest.raises(ValueError):
            SerialExecutor().run(tasks)

    def test_one_bad_task_does_not_abort_the_others(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = _tasks("repro.faults.tasks:echo", 4)
        tasks[2] = Task(kind="repro.faults.tasks:raise", params={}, seed=5, trial=2)
        pool = ParallelExecutor(jobs=2, cache=cache, retries=1)
        with pytest.raises(TaskFailedError) as exc_info:
            pool.run(tasks)
        err = exc_info.value
        assert set(err.failures) == {2}
        assert isinstance(err.failures[2], ValueError)
        # Partial results: every other task completed and was cached.
        assert [r is not None for r in err.results] == [True, True, False, True]
        assert pool.computed == 3
        hit, value = cache.load(tasks[0])
        assert hit and value == err.results[0]

    def test_retry_budget_is_respected(self, tmp_path):
        marker = tmp_path / "markers"
        marker.mkdir()
        params = {"marker_dir": str(marker), "fail_attempts": 2}
        tasks = _tasks("repro.faults.tasks:raise", 2, params)
        # Two failures then success needs three attempts: retries=2 is enough.
        results = ParallelExecutor(jobs=2, retries=2).run(tasks)
        assert [r["attempts"] for r in results] == [3, 3]

    def test_exhausted_retries_surface_the_last_error(self, tmp_path):
        marker = tmp_path / "markers"
        marker.mkdir()
        params = {"marker_dir": str(marker), "fail_attempts": 5}
        tasks = _tasks("repro.faults.tasks:raise", 1, params)
        with pytest.raises(TaskFailedError) as exc_info:
            ParallelExecutor(jobs=1, retries=1).run(tasks)
        assert isinstance(exc_info.value.failures[0], ValueError)
        # retries=1 means exactly two attempts were made.
        counter = marker / "attempts-raise-5-0"
        assert counter.read_text() == "2"

    def test_error_message_names_the_failed_tasks(self):
        tasks = _tasks("repro.faults.tasks:raise", 2)
        with pytest.raises(TaskFailedError) as exc_info:
            ParallelExecutor(jobs=2, retries=0).run(tasks)
        message = str(exc_info.value)
        assert "2 task(s) failed terminally" in message
        assert "task 0" in message and "task 1" in message


class TestWorkerCrashes:
    def test_crashed_worker_does_not_take_down_the_run(self, tmp_path):
        marker = tmp_path / "markers"
        marker.mkdir()
        tasks = _tasks("repro.faults.tasks:echo", 4)
        tasks[1] = Task(
            kind="repro.faults.tasks:crash",
            params={"marker_dir": str(marker), "crash_attempts": 1},
            seed=5, trial=1,
        )
        results = ParallelExecutor(jobs=2, retries=2).run(tasks)
        assert results[1]["attempts"] == 2
        assert all(r is not None for r in results)

    def test_crash_beyond_budget_is_terminal_but_isolated(self, tmp_path):
        from concurrent.futures.process import BrokenProcessPool

        marker = tmp_path / "markers"
        marker.mkdir()
        cache = ResultCache(tmp_path / "cache")
        tasks = _tasks("repro.faults.tasks:echo", 4)
        tasks[0] = Task(
            kind="repro.faults.tasks:crash",
            params={"marker_dir": str(marker), "crash_attempts": 10},
            seed=5, trial=0,
        )
        pool = ParallelExecutor(jobs=2, cache=cache, retries=1)
        with pytest.raises(TaskFailedError) as exc_info:
            pool.run(tasks)
        err = exc_info.value
        assert set(err.failures) == {0}
        assert isinstance(err.failures[0], BrokenProcessPool)
        assert [r is not None for r in err.results] == [False, True, True, True]
        hit, _ = cache.load(tasks[3])
        assert hit

    def test_faulty_executor_injects_crashes_under_real_tasks(self, tmp_path):
        marker = tmp_path / "markers"
        marker.mkdir()
        tasks = _tasks("repro.faults.tasks:echo", 3)
        pool = FaultyExecutor(
            jobs=2, crashes={1: 1}, marker_dir=str(marker), retries=2
        )
        results = pool.run(tasks)
        serial = SerialExecutor().run(tasks)
        assert results == serial
        assert (marker / f"attempts-{tasks[1].fingerprint}").read_text() == "2"

    def test_faulty_executor_requires_marker_dir(self):
        with pytest.raises(ValueError):
            FaultyExecutor(jobs=1, crashes={0: 1})

    def test_hung_task_is_terminated_and_retried(self, tmp_path):
        marker = tmp_path / "markers"
        marker.mkdir()
        tasks = [Task(
            kind="repro.faults.tasks:hang",
            params={"marker_dir": str(marker), "hang_attempts": 1,
                    "hang_seconds": 600.0},
            seed=5, trial=0,
        )]
        results = ParallelExecutor(jobs=1, retries=1, task_timeout=0.5).run(tasks)
        assert results[0]["attempts"] == 2


class TestBackoff:
    def test_delays_are_deterministic_and_bounded(self):
        a = ParallelExecutor(jobs=1, backoff_base=0.1, backoff_cap=1.0, seed=9)
        b = ParallelExecutor(jobs=1, backoff_base=0.1, backoff_cap=1.0, seed=9)
        delays = [a.backoff_delay(w) for w in range(1, 8)]
        assert delays == [b.backoff_delay(w) for w in range(1, 8)]
        assert all(0.0 < d <= 1.0 for d in delays)
        # Exponential until the cap bites.
        assert delays[1] > delays[0]
        assert delays[-1] == 1.0

    def test_different_seeds_jitter_differently(self):
        a = ParallelExecutor(jobs=1, backoff_base=0.1, seed=1)
        b = ParallelExecutor(jobs=1, backoff_base=0.1, seed=2)
        assert [a.backoff_delay(w) for w in range(1, 5)] != [
            b.backoff_delay(w) for w in range(1, 5)
        ]

    def test_zero_base_never_sleeps(self, tmp_path):
        marker = tmp_path / "markers"
        marker.mkdir()
        slept = []
        params = {"marker_dir": str(marker), "fail_attempts": 1}
        tasks = _tasks("repro.faults.tasks:raise", 1, params)
        ParallelExecutor(jobs=1, retries=1, sleep=slept.append).run(tasks)
        assert slept == []

    def test_retry_waves_sleep_the_scheduled_backoff(self, tmp_path):
        marker = tmp_path / "markers"
        marker.mkdir()
        slept = []
        params = {"marker_dir": str(marker), "fail_attempts": 2}
        tasks = _tasks("repro.faults.tasks:raise", 1, params)
        pool = ParallelExecutor(
            jobs=1, retries=2, backoff_base=0.001, seed=3, sleep=slept.append
        )
        pool.run(tasks)
        assert slept == [pool.backoff_delay(1), pool.backoff_delay(2)]

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=0)
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=1, retries=-1)
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=1, task_timeout=0.0)
