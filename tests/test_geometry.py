"""Unit tests for the geometry substrate."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry import (
    Field,
    Point,
    centroid,
    cluster_deployment,
    distance_matrix,
    grid_deployment,
    nearest_index,
    pairwise_distances,
    perimeter_deployment,
    uniform_deployment,
)


class TestPoint:
    def test_distance_is_euclidean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_is_symmetric(self):
        a, b = Point(1.5, -2.0), Point(-4.0, 7.25)
        assert a.distance_to(b) == b.distance_to(a)

    def test_distance_to_self_is_zero(self):
        p = Point(2.0, 3.0)
        assert p.distance_to(p) == 0.0

    def test_manhattan_distance(self):
        assert Point(0, 0).manhattan_distance_to(Point(3, 4)) == 7.0

    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_towards_partial(self):
        mid = Point(0, 0).towards(Point(10, 0), 4.0)
        assert mid == Point(4.0, 0.0)

    def test_towards_overshoot_clamps_to_destination(self):
        assert Point(0, 0).towards(Point(3, 4), 100.0) == Point(3, 4)

    def test_towards_zero_length_segment(self):
        p = Point(2, 2)
        assert p.towards(p, 5.0) == p

    def test_towards_nonpositive_distance_stays(self):
        assert Point(0, 0).towards(Point(10, 0), 0.0) == Point(0, 0)
        assert Point(0, 0).towards(Point(10, 0), -1.0) == Point(0, 0)

    def test_points_are_hashable_and_iterable(self):
        p = Point(1.0, 2.0)
        assert {p: "x"}[Point(1.0, 2.0)] == "x"
        assert tuple(p) == (1.0, 2.0)
        assert p.as_tuple() == (1.0, 2.0)

    def test_centroid(self):
        c = centroid([Point(0, 0), Point(2, 0), Point(1, 3)])
        assert c == Point(1.0, 1.0)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])


class TestField:
    def test_properties(self):
        f = Field(30.0, 40.0)
        assert f.area == 1200.0
        assert f.diagonal == 50.0
        assert f.center == Point(15.0, 20.0)

    def test_square_factory(self):
        f = Field.square(7.0)
        assert (f.width, f.height) == (7.0, 7.0)

    def test_contains_boundary_inclusive(self):
        f = Field(10.0, 10.0)
        assert f.contains(Point(0, 0))
        assert f.contains(Point(10, 10))
        assert not f.contains(Point(10.01, 5))
        assert not f.contains(Point(5, -0.01))

    def test_clamp(self):
        f = Field(10.0, 10.0)
        assert f.clamp(Point(-3, 12)) == Point(0.0, 10.0)
        assert f.clamp(Point(4, 5)) == Point(4, 5)

    @pytest.mark.parametrize("w,h", [(0, 1), (1, 0), (-1, 5)])
    def test_invalid_dimensions_rejected(self, w, h):
        with pytest.raises(ConfigurationError):
            Field(w, h)


class TestDeployments:
    def test_uniform_inside_field_and_seeded(self):
        f = Field(50.0, 20.0)
        pts = uniform_deployment(f, 40, rng=3)
        assert len(pts) == 40
        assert all(f.contains(p) for p in pts)
        assert pts == uniform_deployment(f, 40, rng=3)

    def test_uniform_different_seeds_differ(self):
        f = Field.square(10)
        assert uniform_deployment(f, 5, rng=1) != uniform_deployment(f, 5, rng=2)

    def test_cluster_inside_field(self):
        f = Field.square(100.0)
        pts = cluster_deployment(f, 60, n_clusters=4, rng=7)
        assert len(pts) == 60
        assert all(f.contains(p) for p in pts)

    def test_cluster_is_actually_clustered(self):
        # With tiny spread, points concentrate: mean pairwise distance far
        # below the uniform expectation.
        f = Field.square(100.0)
        clustered = cluster_deployment(f, 50, n_clusters=2, spread=0.01, rng=5)
        uniform = uniform_deployment(f, 50, rng=5)
        d_c = pairwise_distances(clustered).mean()
        d_u = pairwise_distances(uniform).mean()
        assert d_c < d_u * 0.9

    def test_cluster_invalid_params(self):
        f = Field.square(10)
        with pytest.raises(ConfigurationError):
            cluster_deployment(f, 5, n_clusters=0)
        with pytest.raises(ConfigurationError):
            cluster_deployment(f, 5, spread=-0.1)

    def test_grid_count_and_interior(self):
        f = Field(100.0, 60.0)
        for n in (1, 2, 5, 9, 16):
            pts = grid_deployment(f, n)
            assert len(pts) == n
            assert all(0 < p.x < f.width and 0 < p.y < f.height for p in pts)

    def test_grid_zero(self):
        assert grid_deployment(Field.square(1), 0) == []

    def test_grid_is_deterministic(self):
        f = Field.square(9)
        assert grid_deployment(f, 7) == grid_deployment(f, 7)

    def test_perimeter_on_boundary(self):
        f = Field(40.0, 30.0)
        pts = perimeter_deployment(f, 8)
        assert len(pts) == 8
        for p in pts:
            on_x = p.x in (0.0, f.width)
            on_y = p.y in (0.0, f.height)
            assert on_x or on_y

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            uniform_deployment(Field.square(1), -1)


class TestDistances:
    def test_distance_matrix_values(self):
        src = [Point(0, 0), Point(1, 0)]
        dst = [Point(0, 0), Point(0, 2)]
        m = distance_matrix(src, dst)
        assert m.shape == (2, 2)
        assert m[0, 0] == 0.0
        assert m[0, 1] == 2.0
        assert m[1, 0] == 1.0
        assert m[1, 1] == pytest.approx(math.sqrt(5))

    def test_pairwise_symmetric_zero_diagonal(self):
        pts = uniform_deployment(Field.square(10), 6, rng=0)
        m = pairwise_distances(pts)
        assert np.allclose(m, m.T)
        assert np.allclose(np.diag(m), 0.0)

    def test_nearest_index(self):
        targets = [Point(0, 0), Point(10, 0), Point(5, 5)]
        assert nearest_index(Point(9, 1), targets) == 1
        assert nearest_index(Point(0.1, 0), targets) == 0

    def test_nearest_index_empty_raises(self):
        with pytest.raises(ValueError):
            nearest_index(Point(0, 0), [])
