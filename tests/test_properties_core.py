"""Property-based tests (hypothesis) for the CCS core: sharing, solvers, games."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    EgalitarianSharing,
    ProportionalSharing,
    ShapleySharing,
    ccsa,
    ccsga,
    comprehensive_cost,
    member_costs,
    noncooperation,
    optimal_schedule,
    validate_schedule,
)
from repro.game import CoalitionStructure, SociallyAwareSwitch, is_nash_equilibrium
from repro.submodular import is_submodular
from repro.core import densest_group, group_cost_function
from repro.workloads import quick_instance

# Strategy: small random instances, fully determined by drawn parameters.
instances = st.builds(
    quick_instance,
    n_devices=st.integers(min_value=2, max_value=9),
    n_chargers=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=100_000),
    side=st.sampled_from([100.0, 300.0, 600.0]),
    capacity=st.sampled_from([None, 3, 5]),
    tariff_exponent=st.sampled_from([0.7, 0.9, 1.0]),
)

schemes = st.sampled_from(
    [EgalitarianSharing(), ProportionalSharing(), ShapleySharing(exact_limit=5, samples=100)]
)


class TestCostModelProperties:
    @settings(max_examples=20, deadline=None)
    @given(inst=instances)
    def test_every_group_cost_function_is_submodular(self, inst):
        for j in range(inst.n_chargers):
            f = group_cost_function(inst, j, list(range(inst.n_devices)))
            assert is_submodular(f)

    @settings(max_examples=20, deadline=None)
    @given(inst=instances)
    def test_group_cost_subadditive_across_split(self, inst):
        n = inst.n_devices
        left, right = list(range(n // 2)), list(range(n // 2, n))
        if not left or not right:
            return
        for j in range(inst.n_chargers):
            whole = inst.group_cost(range(n), j)
            parts = inst.group_cost(left, j) + inst.group_cost(right, j)
            assert whole <= parts + 1e-9


class TestSharingProperties:
    @settings(max_examples=25, deadline=None)
    @given(inst=instances, scheme=schemes)
    def test_budget_balance_on_full_group(self, inst, scheme):
        members = list(range(inst.n_devices))
        shares = scheme.shares(inst, members, 0)
        assert sum(shares.values()) == pytest.approx(
            inst.charging_price(members, 0), rel=1e-9
        )

    @settings(max_examples=25, deadline=None)
    @given(inst=instances, scheme=schemes)
    def test_shares_nonnegative(self, inst, scheme):
        shares = scheme.shares(inst, list(range(inst.n_devices)), 0)
        assert all(v >= -1e-12 for v in shares.values())

    @settings(max_examples=25, deadline=None)
    @given(inst=instances, scheme=schemes)
    def test_member_costs_sum_to_schedule_cost(self, inst, scheme):
        sched = ccsa(inst)
        costs = member_costs(sched, inst, scheme)
        assert sum(costs.values()) == pytest.approx(
            comprehensive_cost(sched, inst), rel=1e-9
        )


class TestSolverProperties:
    @settings(max_examples=15, deadline=None)
    @given(inst=instances)
    def test_solver_sandwich_opt_le_heuristics_le_nca(self, inst):
        c_opt = comprehensive_cost(optimal_schedule(inst), inst)
        c_ccsa = comprehensive_cost(ccsa(inst), inst)
        c_ccsga = comprehensive_cost(ccsga(inst, certify=False).schedule, inst)
        c_nca = comprehensive_cost(noncooperation(inst), inst)
        assert c_opt <= c_ccsa + 1e-7
        assert c_opt <= c_ccsga + 1e-7
        assert c_ccsa <= c_nca + 1e-7
        assert c_ccsga <= c_nca + 1e-7

    @settings(max_examples=15, deadline=None)
    @given(inst=instances)
    def test_all_solvers_produce_feasible_schedules(self, inst):
        for solver in (ccsa, noncooperation, optimal_schedule):
            validate_schedule(solver(inst), inst)
        validate_schedule(ccsga(inst, certify=False).schedule, inst)

    @settings(max_examples=15, deadline=None)
    @given(inst=instances)
    def test_greedy_first_pick_is_global_density_min(self, inst):
        # The first CCSA session must be the globally densest proposal.
        best = min(
            (
                densest_group(inst, j, list(range(inst.n_devices)))
                for j in range(inst.n_chargers)
            ),
            key=lambda p: p.density,
        )
        sched = ccsa(inst)
        densities = [
            inst.group_cost(s.members, s.charger) / s.size for s in sched.sessions
        ]
        assert min(densities) == pytest.approx(best.density, rel=1e-6)


class TestGameProperties:
    @settings(max_examples=15, deadline=None)
    @given(inst=instances, scheme=schemes)
    def test_ccsga_terminal_state_is_pure_nash(self, inst, scheme):
        run = ccsga(inst, scheme=scheme)
        assert run.nash_certified
        structure = CoalitionStructure.from_schedule(inst, scheme, run.schedule)
        assert is_nash_equilibrium(structure, SociallyAwareSwitch())

    @settings(max_examples=15, deadline=None)
    @given(inst=instances)
    def test_potential_monotone_and_consistent(self, inst):
        run = ccsga(inst)
        assert run.trace.is_strictly_decreasing()
        assert run.trace.final == pytest.approx(
            comprehensive_cost(run.schedule, inst), rel=1e-9
        )
        assert run.trace.n_switches == run.switches

    @settings(max_examples=10, deadline=None)
    @given(inst=instances)
    def test_structure_invariants_after_dynamics(self, inst):
        scheme = EgalitarianSharing()
        structure = CoalitionStructure.from_schedule(
            inst, scheme, ccsga(inst, scheme=scheme, certify=False).schedule
        )
        structure.check_invariants()
