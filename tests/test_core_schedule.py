"""Unit tests for Session, Schedule, validation, and cost accounting."""

from __future__ import annotations

import pytest

from repro.core import (
    Schedule,
    Session,
    comprehensive_cost,
    singleton_schedule,
    validate_schedule,
)
from repro.errors import ScheduleValidationError


class TestSession:
    def test_members_frozen(self):
        s = Session(charger=0, members={1, 2})
        assert s.members == frozenset({1, 2})
        assert s.size == 2

    def test_empty_session_rejected(self):
        with pytest.raises(ScheduleValidationError):
            Session(charger=0, members=set())

    def test_negative_charger_rejected(self):
        with pytest.raises(ScheduleValidationError):
            Session(charger=-1, members={0})


class TestSchedule:
    def make(self):
        return Schedule(
            [Session(0, {0, 1}), Session(1, {2, 3})], solver="test", metadata={"k": 1.0}
        )

    def test_basic_accessors(self):
        s = self.make()
        assert s.n_sessions == 2
        assert s.solver == "test"
        assert s.metadata == {"k": 1.0}
        assert s.covered_devices() == frozenset({0, 1, 2, 3})
        assert s.group_sizes() == [2, 2]

    def test_session_of(self):
        s = self.make()
        assert s.session_of(2).charger == 1
        with pytest.raises(KeyError):
            s.session_of(9)

    def test_canonical_is_order_independent(self):
        a = Schedule([Session(0, {0, 1}), Session(1, {2})])
        b = Schedule([Session(1, {2}), Session(0, {1, 0})])
        assert a.canonical() == b.canonical()

    def test_singleton_schedule_builder(self, tiny_instance):
        s = singleton_schedule(tiny_instance, [0, 0, 1, 1], solver="x")
        assert s.n_sessions == 4
        assert all(sess.size == 1 for sess in s.sessions)
        validate_schedule(s, tiny_instance)

    def test_singleton_schedule_wrong_length(self, tiny_instance):
        with pytest.raises(ScheduleValidationError):
            singleton_schedule(tiny_instance, [0, 0], solver="x")


class TestValidation:
    def test_valid_schedule_passes(self, tiny_instance):
        validate_schedule(
            Schedule([Session(0, {0, 1}), Session(1, {2, 3})]), tiny_instance
        )

    def test_missing_device_detected(self, tiny_instance):
        with pytest.raises(ScheduleValidationError, match="not covered"):
            validate_schedule(Schedule([Session(0, {0, 1, 2})]), tiny_instance)

    def test_duplicate_device_detected(self, tiny_instance):
        sched = Schedule([Session(0, {0, 1}), Session(1, {1, 2, 3})])
        with pytest.raises(ScheduleValidationError, match="appears in sessions"):
            validate_schedule(sched, tiny_instance)

    def test_capacity_violation_detected(self, tiny_instance):
        # tiny_instance chargers have capacity 3.
        sched = Schedule([Session(0, {0, 1, 2, 3})])
        with pytest.raises(ScheduleValidationError, match="exceed capacity"):
            validate_schedule(sched, tiny_instance)

    def test_bad_charger_index_detected(self, tiny_instance):
        sched = Schedule([Session(7, {0, 1, 2, 3})])
        with pytest.raises(ScheduleValidationError, match="charger index"):
            validate_schedule(sched, tiny_instance)

    def test_bad_device_index_detected(self, tiny_instance):
        sched = Schedule([Session(0, {0, 1, 42})])
        with pytest.raises(ScheduleValidationError, match="device index"):
            validate_schedule(sched, tiny_instance)


class TestComprehensiveCost:
    def test_equals_sum_of_group_costs(self, tiny_instance):
        sched = Schedule([Session(0, {0, 1}), Session(1, {2, 3})])
        expected = tiny_instance.group_cost([0, 1], 0) + tiny_instance.group_cost([2, 3], 1)
        assert comprehensive_cost(sched, tiny_instance) == pytest.approx(expected)

    def test_hand_computed_on_linear_instance(self, linear_instance):
        # All three at the only charger: emitted = 600/0.5... demands 100+200+300
        # = 600 stored, /0.5 = 1200 emitted; price = 5 + 0.1*1200 = 125.
        # moving: d0 0*1, d1 5*2=10, d2 10*0.5=5 -> 15. Total 140.
        sched = Schedule([Session(0, {0, 1, 2})])
        assert comprehensive_cost(sched, linear_instance) == pytest.approx(140.0)
