"""Tests for the operator-economics extension: revenues and price competition."""

from __future__ import annotations

import pytest

from repro.core import ccsa, noncooperation
from repro.errors import ConfigurationError
from repro.market import (
    CompetitionConfig,
    best_response_competition,
    charger_revenues,
    charger_utilization,
    with_base_price,
)
from repro.workloads import quick_instance


@pytest.fixture
def inst():
    return quick_instance(
        n_devices=16, n_chargers=3, seed=9, heterogeneous_prices=False, base_price=30.0
    )


class TestOperatorAccounting:
    def test_revenues_sum_to_total_charging_price(self, inst):
        sched = ccsa(inst)
        revenues = charger_revenues(sched, inst)
        total_price = sum(
            inst.charging_price(s.members, s.charger) for s in sched.sessions
        )
        assert sum(revenues) == pytest.approx(total_price)
        assert all(r >= 0 for r in revenues)

    def test_utilization_sums_to_device_count(self, inst):
        sched = noncooperation(inst)
        served = charger_utilization(sched, inst)
        assert sum(served) == inst.n_devices

    def test_with_base_price_replaces_only_base(self, inst):
        charger = inst.chargers[0]
        cheap = with_base_price(charger, 5.0)
        assert cheap.tariff.base == 5.0
        assert cheap.tariff.unit == charger.tariff.unit
        assert cheap.position == charger.position
        # original untouched (frozen dataclasses)
        assert charger.tariff.base == 30.0

    def test_with_base_price_rejects_negative(self, inst):
        with pytest.raises(ValueError):
            with_base_price(inst.chargers[0], -1.0)


class TestCompetition:
    def test_dynamics_converge_and_record_history(self, inst):
        res = best_response_competition(inst, CompetitionConfig(max_rounds=6))
        assert res.converged
        assert res.rounds >= 1
        assert len(res.price_history) == len(res.revenue_history)
        assert len(res.consumer_cost_history) == len(res.price_history)
        assert res.final_schedule is not None

    def test_competition_never_raises_consumer_cost(self, inst):
        res = best_response_competition(inst, CompetitionConfig(max_rounds=6))
        assert res.consumer_cost_history[-1] <= res.consumer_cost_history[0] + 1e-6

    def test_prices_pressed_down_from_monopoly_level(self, inst):
        res = best_response_competition(inst, CompetitionConfig(max_rounds=6))
        assert sum(res.final_prices) < sum(res.price_history[0])

    def test_final_prices_are_candidates_or_initial(self, inst):
        config = CompetitionConfig(candidate_bases=(0.0, 15.0, 30.0), max_rounds=5)
        res = best_response_competition(inst, config)
        allowed = set(config.candidate_bases) | {30.0}
        assert all(p in allowed for p in res.final_prices)

    def test_deterministic(self, inst):
        a = best_response_competition(inst, CompetitionConfig(max_rounds=4))
        b = best_response_competition(inst, CompetitionConfig(max_rounds=4))
        assert a.price_history == b.price_history

    def test_single_round_budget_reports_nonconvergence_or_done(self, inst):
        res = best_response_competition(inst, CompetitionConfig(max_rounds=1))
        # With one round the dynamics either finished (no change) or report
        # non-convergence — never pretend.
        assert res.rounds == 1
        assert isinstance(res.converged, bool)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            CompetitionConfig(candidate_bases=())
        with pytest.raises(ConfigurationError):
            CompetitionConfig(candidate_bases=(-5.0,))
        with pytest.raises(ConfigurationError):
            CompetitionConfig(max_rounds=0)
