"""Unit tests for the Lovász extension and the sampled submodularity check."""

from __future__ import annotations

import numpy as np
import pytest

from repro.submodular import (
    SetFunction,
    is_submodular_sampled,
    lovasz_extension,
    lovasz_subgradient,
    modular,
    powerset,
)


def sqrt_cost(n=4, weights=(1.0, 2.0, 0.5, 3.0)):
    w = list(weights)[:n]

    def fn(s):
        return sum(w[i] for i in s) ** 0.5 if s else 0.0

    return SetFunction(n, fn)


class TestLovaszExtension:
    def test_agrees_with_f_on_indicator_vectors(self):
        f = sqrt_cost()
        for s in powerset(4):
            x = [1.0 if i in s else 0.0 for i in range(4)]
            assert lovasz_extension(f, x) == pytest.approx(f(s))

    def test_positively_homogeneous_on_normalized_f(self):
        f = sqrt_cost()
        x = [0.3, 0.9, 0.1, 0.6]
        assert lovasz_extension(f, [2 * v for v in x]) == pytest.approx(
            2 * lovasz_extension(f, x)
        )

    def test_linear_for_modular_functions(self):
        f = modular([1.0, -2.0, 3.0])
        x = [0.2, 0.7, 0.5]
        assert lovasz_extension(f, x) == pytest.approx(0.2 * 1 + 0.7 * -2 + 0.5 * 3)

    def test_unnormalized_offset(self):
        f = SetFunction(2, lambda s: 5.0 + len(s))
        assert lovasz_extension(f, [0.0, 0.0]) == pytest.approx(5.0)

    def test_empty_ground_set(self):
        f = SetFunction(0, lambda s: 2.0)
        assert lovasz_extension(f, []) == 2.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            lovasz_extension(sqrt_cost(), [0.1, 0.2])

    def test_midpoint_convexity_for_submodular(self):
        f = sqrt_cost()
        rng = np.random.default_rng(0)
        for _ in range(50):
            x, y = rng.uniform(0, 1, 4), rng.uniform(0, 1, 4)
            mid = lovasz_extension(f, (x + y) / 2)
            assert mid <= 0.5 * (lovasz_extension(f, x) + lovasz_extension(f, y)) + 1e-9


class TestSubgradient:
    def test_supports_extension_from_below(self):
        f = sqrt_cost()
        rng = np.random.default_rng(1)
        for _ in range(20):
            x = rng.uniform(0, 1, 4)
            g = lovasz_subgradient(f, x)
            fx = lovasz_extension(f, x)
            for _ in range(10):
                y = rng.uniform(0, 1, 4)
                fy = lovasz_extension(f, y)
                assert fy >= fx + float(g @ (y - x)) - 1e-9

    def test_gradient_of_modular_is_weights(self):
        f = modular([1.0, 2.0, 3.0])
        g = lovasz_subgradient(f, [0.5, 0.1, 0.9])
        assert np.allclose(g, [1.0, 2.0, 3.0])


class TestSampledCheck:
    def test_accepts_submodular(self):
        assert is_submodular_sampled(sqrt_cost(), trials=100, rng=0)

    def test_rejects_supermodular(self):
        f = SetFunction(4, lambda s: float(len(s) ** 2))
        assert not is_submodular_sampled(f, trials=200, rng=0)

    def test_trivial_ground_set(self):
        assert is_submodular_sampled(SetFunction(0, lambda s: 0.0))
