"""Integration tests for the field-trial harness on the 5×8 testbed."""

from __future__ import annotations

import pytest

from repro.core import (
    Schedule,
    Session,
    ccsa,
    comprehensive_cost,
    noncooperation,
)
from repro.sim import (
    FieldTrialConfig,
    NoiseModel,
    compare_field_trial,
    execute_round,
    improvement_pct,
    paired_improvements,
    run_field_trial,
    utilization_summary,
)
from repro.workloads import testbed_instance as make_testbed


@pytest.fixture
def instance():
    return make_testbed(rng=0)


class TestExecuteRound:
    def test_all_sessions_complete_and_costs_positive(self, instance):
        sched = ccsa(instance)
        config = FieldTrialConfig(rounds=1, seed=1)
        outcome = execute_round(instance, sched, config, round_index=0)
        assert outcome.n_sessions == sched.n_sessions
        assert set(outcome.node_costs) == {d.device_id for d in instance.devices}
        assert all(c > 0 for c in outcome.node_costs.values())
        assert outcome.makespan > 0

    def test_noiseless_round_matches_planned_cost(self, instance):
        # With all noise off, measured comprehensive cost equals the
        # scheduling-layer objective exactly.
        sched = ccsa(instance)
        config = FieldTrialConfig(rounds=1, seed=1, noise=NoiseModel.noiseless())
        outcome = execute_round(instance, sched, config, round_index=0)
        assert outcome.total_cost == pytest.approx(
            comprehensive_cost(sched, instance), rel=1e-9
        )

    def test_noisy_cost_differs_from_planned(self, instance):
        sched = ccsa(instance)
        config = FieldTrialConfig(rounds=1, seed=1)
        outcome = execute_round(instance, sched, config, round_index=0)
        planned = comprehensive_cost(sched, instance)
        assert outcome.total_cost != pytest.approx(planned, rel=1e-6)
        # ... but stays within a sane band of it.
        assert 0.5 * planned < outcome.total_cost < 2.0 * planned

    def test_sessions_on_same_pad_queue(self, instance):
        # Force two sessions onto charger 0: they must not overlap.
        sched = Schedule(
            [Session(0, frozenset(range(0, 4))), Session(0, frozenset(range(4, 8)))]
        )
        config = FieldTrialConfig(rounds=1, seed=2, noise=NoiseModel.noiseless())
        outcome = execute_round(instance, sched, config, round_index=0)
        s1, s2 = sorted(outcome.sessions, key=lambda s: s.start)
        assert s2.start >= s1.end - 1e-9

    def test_energy_delivered_matches_demand(self, instance):
        sched = noncooperation(instance)
        config = FieldTrialConfig(rounds=1, seed=3, noise=NoiseModel.noiseless())
        outcome = execute_round(instance, sched, config, round_index=0)
        for d in instance.devices:
            assert outcome.node_energy[d.device_id] == pytest.approx(d.demand)

    def test_session_records_have_consistent_time(self, instance):
        sched = ccsa(instance)
        config = FieldTrialConfig(rounds=1, seed=4)
        outcome = execute_round(instance, sched, config, round_index=0)
        for rec in outcome.sessions:
            assert rec.end > rec.start >= 0
            assert rec.end <= outcome.makespan + 1e-9
            assert 0 < rec.realized_efficiency <= 1.0
            assert rec.billed_price > 0


class TestTrials:
    def test_run_field_trial_rounds(self):
        res = run_field_trial(ccsa, FieldTrialConfig(rounds=3, seed=5), name="ccsa")
        assert len(res.rounds) == 3
        assert res.mean_cost > 0
        assert res.scheduler_name == "ccsa"

    def test_trials_are_reproducible(self):
        cfg = FieldTrialConfig(rounds=2, seed=6)
        a = run_field_trial(ccsa, cfg)
        b = run_field_trial(ccsa, cfg)
        assert a.round_costs == b.round_costs

    def test_paired_worlds_across_schedulers(self):
        # NCA's schedule differs, but the realized worlds must match: a
        # device's travel stretch is keyed per round, so identical schedules
        # yield identical costs.  Verify by running the same algorithm under
        # two names.
        cfg = FieldTrialConfig(rounds=2, seed=7)
        res = compare_field_trial({"a": ccsa, "b": ccsa}, cfg)
        assert res["a"].round_costs == res["b"].round_costs

    def test_ccsa_beats_noncooperation_in_the_field(self):
        cfg = FieldTrialConfig(rounds=4, seed=8)
        res = compare_field_trial({"ccsa": ccsa, "nca": noncooperation}, cfg)
        imps = paired_improvements(res["nca"], res["ccsa"])
        assert all(i > 0 for i in imps)
        # The abstract's field-experiment claim (~42.9%), allowed a wide band.
        assert 25.0 < sum(imps) / len(imps) < 60.0


class TestMetrics:
    def test_improvement_pct(self):
        assert improvement_pct(100.0, 60.0) == pytest.approx(40.0)
        assert improvement_pct(100.0, 120.0) == pytest.approx(-20.0)
        with pytest.raises(ValueError):
            improvement_pct(0.0, 1.0)

    def test_paired_improvements_length_check(self):
        cfg_a = FieldTrialConfig(rounds=2, seed=9)
        cfg_b = FieldTrialConfig(rounds=3, seed=9)
        a = run_field_trial(ccsa, cfg_a)
        b = run_field_trial(ccsa, cfg_b)
        with pytest.raises(ValueError):
            paired_improvements(a, b)

    def test_utilization_summary(self):
        res = run_field_trial(ccsa, FieldTrialConfig(rounds=2, seed=10))
        summary = utilization_summary(res)
        assert summary["rounds"] == 2.0
        assert summary["sessions"] >= 2.0
        assert summary["mean_group_size"] >= 1.0
        assert summary["mean_makespan_s"] > 0


class TestOutageInjection:
    def test_outages_reduce_available_chargers(self):
        from repro.sim.testbed import _online_chargers

        inst = make_testbed(rng=0)
        cfg = FieldTrialConfig(rounds=1, seed=5, outage_prob=0.5)
        seen_counts = {
            len(_online_chargers(inst, cfg, r)) for r in range(20)
        }
        assert any(c < inst.n_chargers for c in seen_counts)
        assert all(c >= 1 for c in seen_counts)

    def test_outages_deterministic_per_config(self):
        from repro.sim.testbed import _online_chargers

        inst = make_testbed(rng=0)
        cfg = FieldTrialConfig(rounds=1, seed=5, outage_prob=0.5)
        a = [c.charger_id for c in _online_chargers(inst, cfg, 3)]
        b = [c.charger_id for c in _online_chargers(inst, cfg, 3)]
        assert a == b

    def test_trial_survives_outages(self):
        cfg = FieldTrialConfig(rounds=4, seed=6, outage_prob=0.4)
        res = run_field_trial(ccsa, cfg)
        assert len(res.rounds) == 4
        assert all(r.total_cost > 0 for r in res.rounds)

    def test_ccsa_still_beats_nca_under_outages(self):
        cfg = FieldTrialConfig(rounds=5, seed=7, outage_prob=0.3)
        res = compare_field_trial({"ccsa": ccsa, "nca": noncooperation}, cfg)
        imps = paired_improvements(res["nca"], res["ccsa"])
        assert sum(imps) / len(imps) > 0

    def test_outage_costs_exceed_healthy_costs(self):
        healthy = run_field_trial(ccsa, FieldTrialConfig(rounds=5, seed=8))
        degraded = run_field_trial(
            ccsa, FieldTrialConfig(rounds=5, seed=8, outage_prob=0.5)
        )
        assert degraded.mean_cost >= healthy.mean_cost

    def test_invalid_outage_prob_rejected(self):
        with pytest.raises(ValueError):
            FieldTrialConfig(outage_prob=1.0)
        with pytest.raises(ValueError):
            FieldTrialConfig(outage_prob=-0.1)
