"""Serial-vs-parallel-vs-cache-replay equivalence of the evaluation.

The executor contract (docs/EXECUTION.md): for fixed seeds, every
experiment produces *byte-identical* output whether its tasks run
serially, on a process pool, or replay from a populated cache — because
task seeds derive from ``(seed, trial)`` spawn keys, never from execution
order.  These tests pin that for every experiment id and for both sweep
primitives, plus the fingerprint injectivity the cache relies on.

Wall-clock measurements are the one physically order-dependent quantity,
so the suite zeroes the runtime-figure timer via ``CCS_BENCH_ZERO_TIMER``
(worker processes inherit it); everything else runs exactly as in
production.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import (
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
    Task,
    render_series,
    render_table,
    run_experiment,
    sweep_costs,
    sweep_runtime,
    table2_optimality,
    table3_field,
)
from repro.experiments.exec import ZERO_TIMER_ENV, canonical_json
from repro.experiments.figures import (
    fig5_cost_vs_devices,
    fig6_cost_vs_chargers,
    fig7_cost_vs_base_price,
    fig8_cost_vs_field_side,
    fig9_runtime,
    fig10_convergence,
    fig11_sharing_fairness,
    fig12_ablation_capacity,
    fig12_ablation_tariff,
)
from repro.workloads import SMALL_SCALE_SPEC


@pytest.fixture(autouse=True)
def zero_timer(monkeypatch):
    """Make runtime figures deterministic so byte-comparison is meaningful."""
    monkeypatch.setenv(ZERO_TIMER_ENV, "1")


def _series_bytes(result) -> str:
    """Rendered text plus JSON of the raw numbers (NaN allowed: fig9 OPT tail)."""
    payload = {"x": list(result.x_values), "series": result.series}
    return render_series(result) + "\n" + json.dumps(payload, sort_keys=True)


def _table_bytes(result) -> str:
    payload = {"header": list(result.header), "rows": [list(r) for r in result.rows]}
    return render_table(result) + "\n" + json.dumps(payload, sort_keys=True)


#: Experiment id → callable producing a run's full output through the
#: ambient executor.  Grids are shrunk so the three-way comparison stays
#: fast, but every id exercises its real task kinds end to end.
SMALL_RUNS = {
    "table1": lambda: run_experiment("table1", trials=1),
    "table2": lambda: _table_bytes(
        table2_optimality(device_counts=(5, 6), trials=2, seed=2).table
    ),
    "table3": lambda: _table_bytes(table3_field(rounds=2, seed=3).table),
    "fig5": lambda: _series_bytes(fig5_cost_vs_devices(values=(6, 10), trials=2, seed=5)),
    "fig6": lambda: _series_bytes(fig6_cost_vs_chargers(values=(2, 4), trials=2, seed=6)),
    "fig7": lambda: _series_bytes(
        fig7_cost_vs_base_price(values=(0.0, 40.0), trials=2, seed=7)
    ),
    "fig8": lambda: _series_bytes(
        fig8_cost_vs_field_side(values=(100.0, 300.0), trials=2, seed=8)
    ),
    "fig9": lambda: _series_bytes(
        fig9_runtime(values=(6, 8), trials=1, seed=9, include_optimal_upto=6)
    ),
    "fig10": lambda: _series_bytes(fig10_convergence(values=(8, 10), trials=1, seed=10)),
    "fig11": lambda: _series_bytes(fig11_sharing_fairness(trials=1, seed=11)),
    "fig12": lambda: (
        _series_bytes(fig12_ablation_tariff(exponents=(0.8, 1.0), trials=1, seed=12))
        + "\n\n"
        + _series_bytes(fig12_ablation_capacity(capacities=(1, 2), trials=1, seed=13))
    ),
}


def _run_with(executor, build):
    from repro.experiments.exec import use_executor

    with use_executor(executor):
        return build()


@pytest.mark.parametrize("eid", sorted(SMALL_RUNS))
def test_serial_parallel_and_replay_identical(eid, tmp_path):
    build = SMALL_RUNS[eid]

    serial = _run_with(SerialExecutor(), build)

    parallel_ex = ParallelExecutor(2, cache=ResultCache(tmp_path / "cache"))
    parallel = _run_with(parallel_ex, build)
    assert parallel == serial, f"{eid}: --jobs 2 output differs from serial"

    replay_ex = SerialExecutor(cache=ResultCache(tmp_path / "cache"))
    replay = _run_with(replay_ex, build)
    assert replay == serial, f"{eid}: cache replay differs from fresh run"
    assert replay_ex.computed == 0, f"{eid}: replay recomputed {replay_ex.computed} tasks"
    assert replay_ex.cache_hits == parallel_ex.computed


@pytest.mark.parametrize("sweep", [sweep_costs, sweep_runtime])
def test_sweep_serial_parallel_and_replay_identical(sweep, tmp_path):
    def build(executor):
        return sweep(
            "s",
            "t",
            SMALL_SCALE_SPEC,
            "n_devices",
            [4, 6],
            trials=2,
            seed=1,
            executor=executor,
        )

    serial = _series_bytes(build(SerialExecutor()))
    parallel_ex = ParallelExecutor(2, cache=ResultCache(tmp_path / "c"))
    assert _series_bytes(build(parallel_ex)) == serial

    replay_ex = SerialExecutor(cache=ResultCache(tmp_path / "c"))
    assert _series_bytes(build(replay_ex)) == serial
    assert replay_ex.computed == 0


def test_custom_algorithms_match_registry_path():
    """The in-process fallback uses the same derived seeds as the tasks."""
    from repro.core import ccsa, ccsga, noncooperation

    custom = {
        "NCA": noncooperation,
        "CCSA": ccsa,
        "CCSGA": lambda inst: ccsga(inst, certify=False).schedule,
    }
    via_tasks = sweep_costs(
        "s", "t", SMALL_SCALE_SPEC, "n_devices", [5], trials=2, seed=3
    )
    in_process = sweep_costs(
        "s", "t", SMALL_SCALE_SPEC, "n_devices", [5], trials=2, seed=3,
        algorithms=custom,
    )
    assert via_tasks.series == in_process.series


# ---------------------------------------------------------------------------
# Fingerprint properties


def _json_scalars():
    return st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**53), max_value=2**53),
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        st.text(max_size=8),
    )


def _params():
    return st.dictionaries(
        st.text(max_size=6),
        st.one_of(_json_scalars(), st.lists(_json_scalars(), max_size=3)),
        max_size=4,
    )


_tasks = st.builds(
    Task,
    kind=st.sampled_from(["point_costs", "point_runtime", "field_trial", "x"]),
    params=_params(),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    trial=st.integers(min_value=0, max_value=10_000),
)


@settings(max_examples=200, deadline=None)
@given(a=_tasks, b=_tasks)
def test_fingerprint_injective_over_task_identity(a, b):
    """fp(a) == fp(b) exactly when the canonical payloads coincide."""
    same_payload = canonical_json(a.payload()) == canonical_json(b.payload())
    assert (a.fingerprint == b.fingerprint) == same_payload


@settings(max_examples=100, deadline=None)
@given(task=_tasks)
def test_fingerprint_ignores_param_insertion_order(task):
    reordered = Task(
        kind=task.kind,
        params=dict(reversed(list(task.params.items()))),
        seed=task.seed,
        trial=task.trial,
    )
    assert reordered.fingerprint == task.fingerprint


def test_fingerprint_distinguishes_each_component():
    base = Task(kind="point_costs", params={"a": 1}, seed=1, trial=1)
    variants = [
        Task(kind="point_runtime", params={"a": 1}, seed=1, trial=1),
        Task(kind="point_costs", params={"a": 2}, seed=1, trial=1),
        Task(kind="point_costs", params={"a": 1}, seed=2, trial=1),
        Task(kind="point_costs", params={"a": 1}, seed=1, trial=2),
        # Type-distinct params must not collide either.
        Task(kind="point_costs", params={"a": 1.0}, seed=1, trial=1),
        Task(kind="point_costs", params={"a": True}, seed=1, trial=1),
        Task(kind="point_costs", params={"a": "1"}, seed=1, trial=1),
    ]
    prints = {t.fingerprint for t in variants}
    assert base.fingerprint not in prints
    assert len(prints) == len(variants)


def test_fingerprint_rejects_unserializable_params():
    with pytest.raises(TypeError):
        Task(kind="k", params={"fn": object()}).fingerprint
    with pytest.raises(ValueError):
        Task(kind="k", params={"x": float("nan")}).fingerprint
