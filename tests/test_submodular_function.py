"""Unit tests for the set-function abstraction and checkers."""

from __future__ import annotations

import math

import pytest

from repro.submodular import (
    SetFunction,
    concave_of_modular,
    is_monotone,
    is_submodular,
    modular,
    powerset,
)


class TestSetFunction:
    def test_evaluation_and_caching(self):
        calls = []

        def fn(s):
            calls.append(s)
            return float(len(s))

        f = SetFunction(3, fn)
        assert f({0, 1}) == 2.0
        assert f([1, 0]) == 2.0  # same frozenset — cache hit
        assert len(calls) == 1
        assert f.cache_size() == 1

    def test_out_of_range_elements_rejected(self):
        f = SetFunction(2, lambda s: 0.0)
        with pytest.raises(ValueError):
            f({0, 5})

    def test_marginal(self):
        f = modular([1.0, 2.0, 4.0])
        assert f.marginal(2, {0}) == 4.0
        with pytest.raises(ValueError):
            f.marginal(0, {0})

    def test_ground_set(self):
        assert SetFunction(4, lambda s: 0.0).ground_set == (0, 1, 2, 3)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            SetFunction(-1, lambda s: 0.0)

    def test_shifted_by_modular(self):
        f = modular([1.0, 2.0, 3.0])
        g = f.shifted_by_modular([0.5, 0.5, 0.5])
        assert g({0, 2}) == pytest.approx((1.0 - 0.5) + (3.0 - 0.5))
        with pytest.raises(ValueError):
            f.shifted_by_modular([1.0])  # wrong length

    def test_restriction_reindexes(self):
        f = modular([10.0, 20.0, 30.0, 40.0])
        r = f.restricted_to([3, 1])
        assert r.n == 2
        assert r({0}) == 40.0
        assert r({1}) == 20.0
        assert r({0, 1}) == 60.0

    def test_restriction_bad_elements(self):
        f = modular([1.0, 2.0])
        with pytest.raises(ValueError):
            f.restricted_to([0, 7])


class TestCombinators:
    def test_modular_values(self):
        f = modular([1.0, -2.0, 3.0])
        assert f(frozenset()) == 0.0
        assert f({0, 1, 2}) == 2.0

    def test_concave_of_modular_values(self):
        f = concave_of_modular([1.0, 4.0], math.sqrt)
        assert f({0}) == pytest.approx(1.0)
        assert f({1}) == pytest.approx(2.0)
        assert f({0, 1}) == pytest.approx(math.sqrt(5.0))

    def test_concave_of_modular_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            concave_of_modular([1.0, -1.0], math.sqrt)


class TestPowerset:
    def test_counts(self):
        assert len(list(powerset(0))) == 1
        assert len(list(powerset(4))) == 16

    def test_large_ground_set_refused(self):
        with pytest.raises(ValueError):
            list(powerset(30))


class TestCheckers:
    def test_modular_is_submodular_and_monotone(self):
        f = modular([1.0, 2.0, 3.0])
        assert is_submodular(f)
        assert is_monotone(f)

    def test_concave_of_modular_is_submodular(self):
        f = concave_of_modular([1.0, 2.0, 0.5, 3.0], lambda x: x**0.7)
        assert is_submodular(f)
        assert is_monotone(f)

    def test_coverage_function_is_submodular(self):
        sets = [{1, 2}, {2, 3}, {4}]

        def coverage(s):
            out = set()
            for i in s:
                out |= sets[i]
            return float(len(out))

        assert is_submodular(SetFunction(3, coverage))

    def test_supermodular_detected(self):
        # f(S) = |S|^2 is strictly supermodular.
        f = SetFunction(4, lambda s: float(len(s) ** 2))
        assert not is_submodular(f)

    def test_nonmonotone_detected(self):
        f = modular([1.0, -1.0, 2.0])
        assert not is_monotone(f)
        assert is_submodular(f)  # modular is always submodular
