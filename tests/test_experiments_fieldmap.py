"""Tests for the ASCII field-map renderer."""

from __future__ import annotations

import pytest

from repro.core import CCSInstance, Device, ccsa
from repro.experiments import field_map
from repro.geometry import Point
from repro.workloads import quick_instance, testbed_instance as make_testbed
from repro.wpt import Charger, LinearTariff


class TestFieldMap:
    def test_renders_chargers_and_devices(self):
        inst = make_testbed(rng=0)
        text = field_map(inst)
        for glyph in "ABCDE":
            assert glyph in text
        assert text.count(".") >= 1  # unassigned devices
        assert "pad0" in text

    def test_schedule_labels_devices_by_charger(self):
        inst = make_testbed(rng=0)
        sched = ccsa(inst)
        text = field_map(inst, sched)
        assert "." not in text.split("chargers:")[0].replace("...", "")
        used = {chr(ord("a") + s.charger) for s in sched.sessions}
        for glyph in used:
            assert glyph in text

    def test_canvas_dimensions(self):
        inst = quick_instance(6, 2, seed=1)
        text = field_map(inst, width=30, height=10)
        body = [l for l in text.splitlines() if l.startswith("|")]
        assert len(body) == 10
        assert all(len(l) == 32 for l in body)

    def test_without_field_uses_bounding_box(self):
        devices = [
            Device("d0", Point(5.0, 5.0), demand=10.0),
            Device("d1", Point(15.0, 9.0), demand=10.0),
        ]
        chargers = [Charger("c", Point(10.0, 7.0), tariff=LinearTariff(base=1.0, unit=0.01))]
        inst = CCSInstance(devices=devices, chargers=chargers)
        text = field_map(inst)
        body = "\n".join(l for l in text.splitlines() if l.startswith("|"))
        assert "A" in body and body.count(".") == 2

    def test_degenerate_collinear_positions(self):
        devices = [Device(f"d{i}", Point(3.0, 3.0), demand=10.0) for i in range(2)]
        chargers = [Charger("c", Point(3.0, 3.0), tariff=LinearTariff(base=1.0, unit=0.01))]
        inst = CCSInstance(devices=devices, chargers=chargers)
        text = field_map(inst)  # zero-extent bounding box must not divide by zero
        assert "A" in text

    def test_tiny_canvas_rejected(self):
        inst = quick_instance(3, 1, seed=0)
        with pytest.raises(ValueError):
            field_map(inst, width=5, height=2)

    def test_too_many_chargers_rejected(self):
        inst = quick_instance(3, 27, seed=0)
        with pytest.raises(ValueError, match="glyphs"):
            field_map(inst)
