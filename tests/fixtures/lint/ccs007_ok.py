"""CCS007 negatives: canonical (key-sorted) json serialization."""
import json


def snapshot(doc, fh, opts):
    body = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    json.dump(doc, fh, sort_keys=True)
    forwarded = json.dumps(doc, **opts)  # kwargs trusted to carry sort_keys
    return body, forwarded
