"""CCS007 positives: json serialization without sort_keys=True."""
import json
from json import dumps


def snapshot(doc, fh):
    body = json.dumps(doc)
    explicit = json.dumps(doc, sort_keys=False)
    json.dump(doc, fh)
    return body, explicit, dumps(doc)
