"""CCS004 positives: poking coalition cached aggregates from outside."""


def tamper(coalition, token):
    coalition.total_demand += 5.0
    coalition.price = 1.25
    coalition.fingerprint ^= token
    coalition.members.add(7)
    coalition.members.discard(3)
