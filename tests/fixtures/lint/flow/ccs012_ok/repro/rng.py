"""Flow fixture (clean): the seed-derivation sink."""
import hashlib


def derive_seed(root, *path):
    digest = hashlib.sha256(repr((root,) + path).encode()).digest()
    return int.from_bytes(digest[:8], "big")
