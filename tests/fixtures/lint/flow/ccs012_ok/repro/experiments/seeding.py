"""Flow fixture (clean): seeds derive from declared configuration only."""
from repro.rng import derive_seed


def make_seed(config, trial):
    root = config["seed_root"]
    return derive_seed(root, "trial", trial)
