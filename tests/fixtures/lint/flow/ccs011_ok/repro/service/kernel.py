"""Flow fixture (clean): every mutating public method journals or replays."""
from typing import Optional

from .journal import Journal


class ChargingService:
    def __init__(self, journal: Optional[Journal] = None):
        self.journal = journal
        self.pending = []
        self.accepted = 0

    def submit(self, request):
        self._journal("submit", request)
        return self._admit(request)

    def counts(self):
        return {"pending": len(self.pending), "accepted": self.accepted}

    def reload(self, path):
        return ChargingService.recover(path)

    @classmethod
    def recover(cls, path):
        kernel = cls()
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                kernel._admit({"energy": 1, "line": line})
        return kernel

    def _journal(self, event, data):
        if self.journal is not None:
            self.journal.append(event, 0, data)

    def _admit(self, request):
        if request.get("energy", 0) <= 0:
            return False
        self._apply(request)
        return True

    def _apply(self, request):
        self.pending.append(request)
        self.accepted += 1
