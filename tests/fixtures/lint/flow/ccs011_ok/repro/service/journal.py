"""Flow fixture (clean): the journal, appended on every mutating path."""


class Journal:
    def __init__(self, fh):
        self._fh = fh

    def append(self, event, t, data):
        self._fh.write(f"{event} {t} {data}\n")
