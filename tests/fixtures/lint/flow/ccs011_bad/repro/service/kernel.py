"""Flow fixture: public method mutates two hops down, never journals."""
from typing import Optional

from .journal import Journal


class ChargingService:
    def __init__(self, journal: Optional[Journal] = None):
        self.journal = journal
        self.pending = []
        self.accepted = 0

    def submit(self, request):
        return self._admit(request)

    def _admit(self, request):
        if request.get("energy", 0) <= 0:
            return False
        self._apply(request)
        return True

    def _apply(self, request):
        self.pending.append(request)
        self.accepted += 1
