"""Flow fixture: the journal exists — the mutating path just skips it."""


class Journal:
    def __init__(self, fh):
        self._fh = fh

    def append(self, event, t, data):
        self._fh.write(f"{event} {t} {data}\n")
