"""Flow fixture (clean): registry written only by the decorator."""

_KINDS = {}


def task_kind(name):
    def deco(fn):
        _KINDS[name] = fn
        return fn

    return deco
