"""Top of the chain (clean): everything arrives and leaves in the payload."""
from .helper import merge, remember
from .task import task_kind


@task_kind("point")
def point(payload):
    cache = remember(payload.get("cache", {}), payload["key"], payload["value"])
    return {"cache": cache, "merged": merge([payload["value"]])}
