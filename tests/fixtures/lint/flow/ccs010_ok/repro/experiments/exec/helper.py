"""Bottom of the chain (clean): state flows through arguments and returns."""


def remember(cache, key, value):
    out = dict(cache)
    out[key] = value
    return out


def merge(items, acc=None):
    result = list(acc) if acc is not None else []
    result.extend(items)
    return result
