"""Top of the chain: the tainted value crosses two files on its way in."""
from repro.rng import derive_seed

from .hostid import host_token


def seed_with(root, trial):
    return derive_seed(root, "trial", trial)


def make_seed(trial):
    token = host_token()
    salted = token ^ 0x5DEECE66D
    return seed_with(salted, trial)
