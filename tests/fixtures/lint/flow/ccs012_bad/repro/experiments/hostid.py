"""Bottom of the chain: host identity no per-file rule covers.

``uuid.getnode`` is neither the global RNG (CCS001) nor a clock
(CCS002); only value taint shows its result becoming the seed.
"""
import uuid


def host_token():
    return int(uuid.getnode())
