"""Top of the chain: the worker itself looks clean in isolation."""
from .helper import merge, remember
from .task import task_kind


@task_kind("point")
def point(payload):
    value = remember(payload["key"], payload["value"])
    return merge([value])
