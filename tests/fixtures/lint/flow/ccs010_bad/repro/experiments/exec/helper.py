"""Bottom of the chain: per-process state a worker reaches two hops down."""

_CACHE = {}


def remember(key, value):
    _CACHE[key] = value
    return value


def merge(items, acc=[]):
    acc.extend(items)
    return acc
