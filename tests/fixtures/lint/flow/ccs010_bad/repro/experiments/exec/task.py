"""Flow fixture: the task-kind registry (import-time writes are legal)."""

_KINDS = {}


def task_kind(name):
    def deco(fn):
        _KINDS[name] = fn
        return fn

    return deco
