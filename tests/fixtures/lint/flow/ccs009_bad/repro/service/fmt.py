"""Middle of the chain: pure-looking formatter, one call from the leak."""
from .meta import record_meta


def stamp(seq, event, t, data):
    meta = record_meta(event)
    return f"{seq} {event} {t} {meta} {data}\n"
