"""Bottom of the chain: entropy read no per-file rule covers.

``uuid.uuid4`` is not a clock (CCS002) and not the global RNG (CCS001):
only whole-program reachability from ``Journal.append`` exposes it.
"""
import uuid


def record_meta(event):
    return f"{event}:{uuid.uuid4().hex}"
