"""Flow fixture: Journal.append whose formatting helper is impure."""
from .fmt import stamp


class Journal:
    def __init__(self, fh):
        self._fh = fh
        self._seq = 0

    def append(self, event, t, data):
        line = stamp(self._seq, event, t, data)
        self._seq += 1
        self._fh.write(line)
