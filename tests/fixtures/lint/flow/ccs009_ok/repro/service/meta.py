"""Bottom of the chain: identity derived from inputs only."""


def record_meta(event, seq):
    return f"{event}:{seq:08d}"
