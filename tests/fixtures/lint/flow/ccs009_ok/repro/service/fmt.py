"""Middle of the chain: same shape as the bad fixture, but pure."""
from .meta import record_meta


def stamp(seq, event, t, data):
    meta = record_meta(event, seq)
    return f"{seq} {event} {t} {meta} {data}\n"
