"""CCS006 positives: iteration order taken from sets in canonical code."""


def canonical_members(members: set):
    return ",".join(str(m) for m in members)


def walk(ids):
    pending = set(ids)
    for item in pending:
        yield item
    for tag in {"a", "b", "c"}:
        yield tag
    return list(frozenset(ids))
