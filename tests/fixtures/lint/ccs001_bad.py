"""CCS001 positives: process-global random state."""
import random
from random import choice

import numpy as np
from numpy import random as npr
from numpy.random import seed


def pick(xs):
    np.random.seed(0)
    a = np.random.rand(3)
    b = npr.randint(10)
    seed(1)
    return random.random(), choice(xs), a, b
