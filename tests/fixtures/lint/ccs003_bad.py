"""CCS003 positives: float-literal equality comparisons."""


def check(x, share, factor):
    if x == 0.0:
        return True
    if 1.0 != factor:
        return False
    return share == 0.5 or -1.5 == x
