"""CCS008 positives: dtype narrowing and unordered float reductions."""
import numpy as np


def pack(values, move, idx):
    arr = np.array(values, dtype=np.float32)
    cols = np.zeros(4, dtype="int32")
    total = np.sum(arr)
    folded = np.add.reduce(arr)
    row = move[idx].sum()
    return arr, cols, total, folded, row
