"""CCS008 negatives: float64/int64 arrays, explicitly-ordered accumulation."""
import numpy as np


def pack(values, sizes):
    arr = np.asarray(values, dtype=float)
    wide = np.zeros(4, dtype=np.float64)
    cols = np.zeros(4, dtype=np.int64)
    named = np.array(sizes, dtype="int64")
    total = 0.0
    for v in values:
        total += v
    return arr, wide, cols, named, total
