"""CCS002 negatives: logical clocks and non-clock uses of the time module."""
import datetime
import time


def measure(clock, events):
    time.sleep(0.0)  # sleeping is not *reading* the clock
    horizon = datetime.timedelta(seconds=5)
    for event in events:
        clock.advance(event.t)
    return clock.now, horizon


def format_explicit(t):
    # With an explicit time argument these are pure formatting calls.
    a = time.gmtime(t)
    b = time.localtime(t)
    c = time.ctime(t)
    d = time.asctime(time.gmtime(t))
    e = time.strftime("%Y-%m-%d", time.gmtime(t))
    return a, b, c, d, e
