"""CCS002 negatives: logical clocks and non-clock uses of the time module."""
import datetime
import time


def measure(clock, events):
    time.sleep(0.0)  # sleeping is not *reading* the clock
    horizon = datetime.timedelta(seconds=5)
    for event in events:
        clock.advance(event.t)
    return clock.now, horizon
