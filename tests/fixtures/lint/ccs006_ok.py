"""CCS006 negatives: sorted() before any order-sensitive consumption."""


def canonical_members(members: set):
    return ",".join(str(m) for m in sorted(members))


def walk(ids):
    pending = set(ids)
    for item in sorted(pending):
        yield item
    for pair in [(1, "a"), (2, "b")]:  # lists keep their order
        yield pair
    return sorted(frozenset(ids))
