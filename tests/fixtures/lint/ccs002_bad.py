"""CCS002 positives: wall-clock reads inside deterministic code."""
import datetime
import time
import time as _t
from datetime import datetime as dt
from time import perf_counter


def stamp():
    started = time.time()
    tick = perf_counter()
    mono = time.monotonic()
    day = datetime.datetime.now()
    utc = dt.utcnow()
    return started, tick, mono, day, utc


def renamed_module_alias():
    # `import time as _t` must not hide the read.
    return _t.monotonic(), _t.perf_counter()


def defaulted_to_now():
    # The time argument omitted: every one of these formats *now*.
    a = time.gmtime()
    b = time.localtime()
    c = time.ctime()
    d = time.asctime()
    e = time.strftime("%Y-%m-%d")
    return a, b, c, d, e
