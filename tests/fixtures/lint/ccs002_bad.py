"""CCS002 positives: wall-clock reads inside deterministic code."""
import datetime
import time
from datetime import datetime as dt
from time import perf_counter


def stamp():
    started = time.time()
    tick = perf_counter()
    mono = time.monotonic()
    day = datetime.datetime.now()
    utc = dt.utcnow()
    return started, tick, mono, day, utc
