"""CCS005 positives: append-mode file handles outside the journal."""
from pathlib import Path


def log_line(path, text):
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(text)
    with open(path, mode="ab") as fh:
        fh.write(text.encode("utf-8"))
    with Path(path).open("a+") as fh:
        fh.write(text)
