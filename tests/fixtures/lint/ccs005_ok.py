"""CCS005 negatives: whole-file writes and reads."""
from pathlib import Path


def rewrite(path, text):
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    with Path(path).open("r", encoding="utf-8") as fh:
        return fh.read()
