"""CCS001 negatives: explicit Generator objects and SeedSequence spawning."""
import numpy as np
from numpy.random import Generator, SeedSequence, default_rng


def pick(rng: Generator):
    child = np.random.default_rng(SeedSequence(1))
    sibling = default_rng(np.random.PCG64(7))
    return rng.random(), child.integers(3), sibling.random()
