"""CCS004 negatives: reading cached aggregates and using the real mutators."""


def inspect(structure, device, target):
    coalition = structure.coalition_of(device)
    demand = coalition.total_demand
    price = coalition.price
    structure.apply_move(device, target)  # sanctioned mutation path
    return demand, price, sorted(coalition.members)
