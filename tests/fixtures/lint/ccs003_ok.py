"""CCS003 negatives: integer equality, ordering, and the numeric helpers."""
from repro.numeric import EXACT_ONE, is_exact, is_exact_zero, isclose


def check(x, n, factor):
    if n == 0:  # integer sentinels compare exactly by design
        return True
    if x >= 0.5:  # ordering comparisons are fine
        return False
    return is_exact_zero(x) or is_exact(factor, EXACT_ONE) or isclose(x, 0.25)
