"""Regenerate ``experiments_golden.json`` — the pinned Table 2/3 outputs.

Companion to ``capture_ccsga_golden.py``: where that file pins the game
*dynamics*, this one pins the *evaluation headline* — the rendered
Table 2 (small-scale optimality) and Table 3 (field experiment) at their
canonical parameters, plus the aggregate statistics EXPERIMENTS.md quotes.
``tests/test_experiments_golden.py`` replays both tables (serially and
through the parallel executor) and compares byte-for-byte, so neither an
executor change nor a seed-derivation change can silently drift the
reported numbers.

Run only after an *intentional* behaviour change::

    PYTHONPATH=src python tests/fixtures/capture_experiments_golden.py
    # or: make golden-experiments
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments import render_table, table2_optimality, table3_field

OUT = Path(__file__).parent / "experiments_golden.json"

#: Canonical parameters — what the golden pins.  Must match
#: tests/test_experiments_golden.py.
TABLE2_ARGS = {"device_counts": (6, 8, 10, 12), "trials": 5, "seed": 101}
TABLE3_ARGS = {"rounds": 10, "seed": 3}


def capture() -> dict:
    t2 = table2_optimality(**TABLE2_ARGS)
    t3 = table3_field(**TABLE3_ARGS)
    return {
        "_comment": "Pinned evaluation tables; regenerate via capture_experiments_golden.py",
        "table2": {
            "args": {k: list(v) if isinstance(v, tuple) else v for k, v in TABLE2_ARGS.items()},
            "rendered": render_table(t2.table),
            "avg_gap_vs_optimal_pct": t2.avg_gap_vs_optimal_pct,
            "avg_saving_vs_nca_pct": t2.avg_saving_vs_nca_pct,
        },
        "table3": {
            "args": dict(TABLE3_ARGS),
            "rendered": render_table(t3.table),
            "avg_improvement_pct": t3.avg_improvement_pct,
            "ccsa_mean_cost": t3.ccsa_mean_cost,
            "nca_mean_cost": t3.nca_mean_cost,
        },
    }


if __name__ == "__main__":
    golden = capture()
    with open(OUT, "w") as fh:
        json.dump(golden, fh, indent=2)
        fh.write("\n")
    print(f"wrote {OUT}")
    print(golden["table2"]["rendered"])
    print()
    print(golden["table3"]["rendered"])
