"""Regenerate ``ccsga_golden.json`` — the pinned CCSGA dynamics outputs.

Run from the repo root after any *intentional* behaviour change to the
game dynamics::

    PYTHONPATH=src python tests/fixtures/capture_ccsga_golden.py

The golden file pins the full observable output of ``ccsga()`` — the
schedule, the switch/sweep counts, and the entire potential trace — on
the serialized fixture instances and two seeded random workloads, under
both paper sharing schemes.  The incremental-cost engine must reproduce
these numbers exactly (see ``tests/test_game_incremental.py``).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core import ccsga, EgalitarianSharing, ProportionalSharing
from repro.io import instance_from_dict
from repro.workloads import quick_instance

FIXTURES = Path(__file__).parent


def load_fixture(name):
    with open(FIXTURES / f"{name}.json") as fh:
        return instance_from_dict(json.load(fh))


def schedule_key(schedule):
    return sorted(
        [session.charger, sorted(session.members)] for session in schedule.sessions
    )


def capture(instance, scheme):
    result = ccsga(instance, scheme=scheme, certify=True)
    return {
        "schedule": schedule_key(result.schedule),
        "switches": result.switches,
        "sweeps": result.sweeps,
        "trace": list(result.trace.values),
        "nash_certified": result.nash_certified,
    }


def main():
    cases = {}
    schemes = {
        "egalitarian": EgalitarianSharing(),
        "proportional": ProportionalSharing(),
    }
    for name in ("small_uniform", "medium_cluster", "testbed"):
        inst = load_fixture(name)
        for sname, scheme in schemes.items():
            cases[f"{name}/{sname}"] = capture(inst, scheme)
    for n, m, seed in ((24, 4, 7), (40, 6, 2026)):
        inst = quick_instance(n_devices=n, n_chargers=m, seed=seed, capacity=6)
        for sname, scheme in schemes.items():
            cases[f"quick_n{n}_m{m}_s{seed}/{sname}"] = capture(inst, scheme)
    out = FIXTURES / "ccsga_golden.json"
    with open(out, "w") as fh:
        json.dump(cases, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out} ({len(cases)} cases)")


if __name__ == "__main__":
    main()
