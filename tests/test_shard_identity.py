"""The degenerate-case guarantee: one shard IS the unsharded service.

``ShardedService(n_shards=1)`` must be byte-identical — journal bytes,
metrics snapshot, final schedule — to a plain ``ChargingService`` over
the same chargers and input stream, including under kernel fault plans.
This is the contract that makes ``--shards`` safe to default on.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan, drive
from repro.geometry import Point
from repro.service import ChargingService, ServiceConfig, generate_requests
from repro.shard import ShardedService, drive_sharded, shard_journal_name
from repro.wpt import Charger

CHARGERS = [
    Charger(charger_id="c0", position=Point(25.0, 25.0)),
    Charger(charger_id="c1", position=Point(75.0, 75.0)),
]
CONFIG = ServiceConfig(epoch=60.0, window=120.0)


def fresh_chargers():
    return [
        Charger(charger_id="c0", position=Point(25.0, 25.0)),
        Charger(charger_id="c1", position=Point(75.0, 75.0)),
    ]


@pytest.fixture(scope="module")
def stream():
    # The recovery-suite fixture stream, reused so the identity claim
    # covers exactly the inputs the durability tests pin.
    return generate_requests(
        30, rate=0.25, deadline_slack=900.0, max_price_factor=1.3, rng=21
    )


class TestOneShardByteIdentity:
    def test_plain_stream(self, tmp_path, stream):
        ref = ChargingService(
            fresh_chargers(), config=CONFIG, journal_path=tmp_path / "ref.jsonl"
        )
        for r in stream:
            ref.submit(r)
        ref.advance(stream[-1].submitted_at + 300.0)
        ref.drain()
        ref.journal.close()

        svc = ShardedService(
            fresh_chargers(), n_shards=1, config=CONFIG,
            journal_dir=tmp_path / "sharded",
        )
        for r in stream:
            svc.submit(r)
        svc.advance(stream[-1].submitted_at + 300.0)
        svc.drain()
        svc.close()

        shard_journal = tmp_path / "sharded" / shard_journal_name(0)
        assert shard_journal.read_bytes() == (tmp_path / "ref.jsonl").read_bytes()
        assert svc.final_schedule() == ref.final_schedule()
        assert svc.metrics_snapshot() == ref.metrics_snapshot()
        assert svc.counts() == ref.counts()

    @pytest.mark.parametrize("fault_seed", [3, 17])
    def test_under_kernel_fault_plans(self, tmp_path, stream, fault_seed):
        plan = FaultPlan.generate(
            fault_seed,
            charger_ids=[c.charger_id for c in CHARGERS],
            requests=stream,
            outage_prob=0.7,
            cancel_prob=0.2,
            no_show_prob=0.1,
        )
        ref = ChargingService(
            fresh_chargers(), config=CONFIG,
            journal_path=tmp_path / f"ref-{fault_seed}.jsonl", journal_sync=False,
        )
        drive(ref, stream, plan)
        ref.journal.close()

        sharded_dir = tmp_path / f"sharded-{fault_seed}"
        svc = ShardedService(
            fresh_chargers(), n_shards=1, config=CONFIG,
            journal_dir=sharded_dir, journal_sync=False,
        )
        drive_sharded(svc, stream, plan)
        svc.close()

        assert (sharded_dir / shard_journal_name(0)).read_bytes() == (
            (tmp_path / f"ref-{fault_seed}.jsonl").read_bytes()
        )
        assert svc.final_schedule() == ref.final_schedule()
        assert svc.metrics_snapshot() == ref.metrics_snapshot()

    def test_one_shard_schedule_has_no_shard_key(self, stream):
        # At n=1 the facade must not decorate sessions — byte identity
        # extends to the schedule documents themselves.
        svc = ShardedService(fresh_chargers(), n_shards=1, config=CONFIG)
        for r in stream:
            svc.submit(r)
        svc.drain()
        schedule = svc.final_schedule()
        assert schedule and all("shard" not in s for s in schedule)

    def test_halo_cannot_break_single_shard_identity(self, stream):
        # With one cell every device is interior no matter the halo.
        a = ShardedService(fresh_chargers(), n_shards=1, halo=50.0, config=CONFIG)
        b = ChargingService(fresh_chargers(), config=CONFIG)
        for r in stream:
            a.submit(r)
            b.submit(r)
        a.drain()
        b.drain()
        assert a.final_schedule() == b.final_schedule()
        assert a.metrics_snapshot() == b.metrics_snapshot()
