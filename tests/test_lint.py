"""Tests for ccs-lint, the domain-aware static analyzer.

Three layers:

- per-rule behaviour against the fixture snippets in
  ``tests/fixtures/lint/`` (every rule has a violating and a clean file);
- the machinery: inline suppressions, the baseline round-trip, the CLI;
- the tier-1 gate: ``src/`` itself analyzes clean, and *reintroducing*
  a determinism violation (global RNG, wall-clock read) fails here.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import analyze_paths, analyze_source
from repro.lint.analyzer import SYNTAX_ERROR_CODE, normalize_module
from repro.lint.baseline import Baseline
from repro.lint.cli import main as lint_main
from repro.lint.finding import Finding
from repro.lint.registry import all_rules, get_rule

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"
FIXTURES = Path(__file__).parent / "fixtures" / "lint"

#: Synthetic module labels that put each fixture inside the rule's scope
#: while staying outside its ``allow`` list.
MODULE_LABELS = {
    "CCS001": "repro/sim/noise.py",
    "CCS002": "repro/service/kernel.py",
    "CCS003": "repro/core/instance.py",
    "CCS004": "repro/service/plan.py",
    "CCS005": "repro/service/metrics.py",
    "CCS006": "repro/experiments/exec/task.py",
    "CCS007": "repro/service/snapshot.py",
    "CCS008": "repro/game/arraycore.py",
}
RULE_CODES = sorted(MODULE_LABELS)


def analyze_fixture(code: str, kind: str):
    path = FIXTURES / f"{code.lower()}_{kind}.py"
    return analyze_source(path.read_text(encoding="utf-8"), str(path), module=MODULE_LABELS[code])


# --------------------------------------------------------------------- #
# the rule catalog


def test_registry_has_all_rules():
    codes = [rule.code for rule in all_rules()]
    assert codes == sorted(codes)
    for code in RULE_CODES:
        assert code in codes


def test_every_rule_documents_itself():
    for rule in all_rules():
        assert re.fullmatch(r"CCS\d{3}", rule.code)
        assert rule.title
        explanation = rule.explanation()
        assert len(explanation.split()) >= 10, f"{rule.code} explanation too thin"


@pytest.mark.parametrize("code", RULE_CODES)
def test_rule_flags_violating_fixture(code):
    report = analyze_fixture(code, "bad")
    hits = [f for f in report.findings if f.code == code]
    assert hits, f"{code} found nothing in its violating fixture"
    for finding in hits:
        assert finding.line > 0
        assert code in finding.render()


@pytest.mark.parametrize("code", RULE_CODES)
def test_rule_passes_clean_fixture(code):
    report = analyze_fixture(code, "ok")
    assert report.findings == [], "\n".join(f.render() for f in report.findings)
    assert report.suppressed == []


def test_allow_list_exempts_owning_module():
    # The exact source that is a violation anywhere else is legal inside
    # the module that owns the invariant.
    source = (FIXTURES / "ccs005_bad.py").read_text(encoding="utf-8")
    inside = analyze_source(source, "journal.py", module="repro/service/journal.py")
    assert [f for f in inside.findings if f.code == "CCS005"] == []


def test_scoped_rule_ignores_out_of_scope_modules():
    source = (FIXTURES / "ccs006_bad.py").read_text(encoding="utf-8")
    outside = analyze_source(source, "geometry.py", module="repro/geometry/point.py")
    assert [f for f in outside.findings if f.code == "CCS006"] == []


def test_syntax_error_becomes_ccs000():
    report = analyze_source("def broken(:\n", "broken.py", module="repro/x.py")
    assert [f.code for f in report.findings] == [SYNTAX_ERROR_CODE]


def test_normalize_module():
    assert normalize_module("src/repro/service/journal.py") == "repro/service/journal.py"
    assert (
        normalize_module("/abs/repo/src/repro/game/coalition.py")
        == "repro/game/coalition.py"
    )
    assert normalize_module("./tools/script.py") == "tools/script.py"


# --------------------------------------------------------------------- #
# inline suppressions


def test_same_line_suppression_silences_named_code():
    src = "import random  # ccs-lint: ignore[CCS001] -- fixture\n"
    report = analyze_source(src, "m.py", module=MODULE_LABELS["CCS001"])
    assert report.findings == []
    assert [f.code for f in report.suppressed] == ["CCS001"]


def test_standalone_suppression_covers_next_code_line():
    src = (
        "# ccs-lint: ignore[CCS001] -- justification that spans\n"
        "# more than one comment line before the code\n"
        "import random\n"
    )
    report = analyze_source(src, "m.py", module=MODULE_LABELS["CCS001"])
    assert report.findings == []
    assert [f.code for f in report.suppressed] == ["CCS001"]


def test_wrong_code_suppression_does_not_silence():
    src = "import random  # ccs-lint: ignore[CCS002] -- wrong code\n"
    report = analyze_source(src, "m.py", module=MODULE_LABELS["CCS001"])
    assert [f.code for f in report.findings] == ["CCS001"]
    assert report.suppressed == []


def test_bare_ignore_silences_everything_on_the_line():
    src = "import random  # ccs-lint: ignore\n"
    report = analyze_source(src, "m.py", module=MODULE_LABELS["CCS001"])
    assert report.findings == []
    assert [f.code for f in report.suppressed] == ["CCS001"]


def test_suppression_in_string_literal_is_inert():
    src = 'NOTE = "# ccs-lint: ignore[CCS001]"\nimport random\n'
    report = analyze_source(src, "m.py", module=MODULE_LABELS["CCS001"])
    assert [f.code for f in report.findings] == ["CCS001"]


# --------------------------------------------------------------------- #
# the baseline


def bad_findings(code: str = "CCS003"):
    return analyze_fixture(code, "bad").findings


def test_baseline_round_trip(tmp_path):
    findings = bad_findings()
    path = tmp_path / "baseline.json"
    count = Baseline.write(path, findings)
    assert count == len(findings)
    baseline = Baseline.load(path)
    assert len(baseline) == len(findings)
    new, baselined = baseline.partition(findings)
    assert new == []
    assert baselined == findings


def test_baseline_survives_line_shifts(tmp_path):
    source = (FIXTURES / "ccs003_bad.py").read_text(encoding="utf-8")
    path = tmp_path / "baseline.json"
    Baseline.write(path, bad_findings())
    shifted = "# a new leading comment\n# another\n\n" + source
    report = analyze_source(shifted, "m.py", module=MODULE_LABELS["CCS003"])
    new, baselined = Baseline.load(path).partition(report.findings)
    assert new == []
    assert len(baselined) == len(report.findings)


def test_editing_a_baselined_line_resurfaces_it(tmp_path):
    source = (FIXTURES / "ccs003_bad.py").read_text(encoding="utf-8")
    path = tmp_path / "baseline.json"
    Baseline.write(path, bad_findings())
    edited = source.replace("share == 0.5", "share == 0.75")
    report = analyze_source(edited, "m.py", module=MODULE_LABELS["CCS003"])
    new, _ = Baseline.load(path).partition(report.findings)
    # The edited line carried two findings (0.5 and -1.5); both resurface.
    assert {f.snippet.strip() for f in new} == {"return share == 0.75 or -1.5 == x"}
    assert len(new) == 2


def test_baseline_entries_are_a_multiset():
    line = "    x = y == 0.5\n"
    src = "def f(y):\n" + line + line.replace("x", "z")
    report = analyze_source(src, "m.py", module=MODULE_LABELS["CCS003"])
    assert len(report.findings) == 2
    baseline = Baseline(
        __import__("collections").Counter({report.findings[0].key(): 1})
    )
    new, baselined = baseline.partition(report.findings)
    # Two identical-content findings, one baseline entry: one absorbed.
    assert len(new) == 1 and len(baselined) == 1


def test_baseline_rejects_unknown_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "findings": []}))
    with pytest.raises(ValueError):
        Baseline.load(path)


def test_missing_baseline_is_empty(tmp_path):
    baseline = Baseline.load(tmp_path / "nope.json")
    assert len(baseline) == 0


# --------------------------------------------------------------------- #
# the CLI


def test_cli_explain_every_rule(capsys):
    for rule in all_rules():
        assert lint_main(["--explain", rule.code]) == 0
        out = capsys.readouterr().out
        assert rule.code in out and rule.title in out


def test_cli_explain_unknown_rule(capsys):
    assert lint_main(["--explain", "CCS999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in RULE_CODES:
        assert code in out


def test_cli_missing_path_is_usage_error(capsys):
    assert lint_main(["definitely/not/a/path.py"]) == 2


def test_cli_flags_violations_and_baseline_silences_them(tmp_path, capsys):
    bad = FIXTURES / "ccs001_bad.py"
    assert lint_main([str(bad), "--no-baseline"]) == 1
    captured = capsys.readouterr()
    assert "CCS001" in captured.out

    baseline = tmp_path / "baseline.json"
    assert lint_main([str(bad), "--baseline", str(baseline), "--write-baseline"]) == 0
    capsys.readouterr()
    assert lint_main([str(bad), "--baseline", str(baseline)]) == 0
    assert "baselined" in capsys.readouterr().err


def test_cli_clean_file_exits_zero(capsys):
    ok = FIXTURES / "ccs001_ok.py"
    assert lint_main([str(ok), "--no-baseline"]) == 0


def test_module_entry_point_runs():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "--list-rules"],
        cwd=REPO,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr
    assert "CCS001" in proc.stdout


# --------------------------------------------------------------------- #
# the tier-1 gate: src itself


def src_reports():
    return analyze_paths([SRC])


def test_src_tree_is_lint_clean():
    findings = [f for r in src_reports() for f in r.findings]
    findings.sort(key=Finding.sort_key)
    baseline = Baseline.load(REPO / ".ccs-lint-baseline.json")
    new, _ = baseline.partition(findings)
    assert new == [], "ccs-lint findings in src:\n" + "\n".join(f.render() for f in new)


def test_checked_in_baseline_is_empty():
    # The burn-down is done; the baseline must not silently regrow.
    baseline = Baseline.load(REPO / ".ccs-lint-baseline.json")
    assert len(baseline) == 0


def test_every_inline_suppression_names_a_code_and_a_reason():
    pattern = re.compile(r"#\s*ccs-lint\s*:\s*ignore(?P<codes>\[[^\]]+\])?(?P<reason>.*)")
    for path in sorted(SRC.rglob("*.py")):
        if (SRC / "repro" / "lint") in path.parents:
            continue  # the linter's own docs/patterns mention the marker
        for k, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
            match = pattern.search(line)
            if match is None:
                continue
            assert match.group("codes"), f"{path}:{k}: bare ignore (name the codes)"
            reason = match.group("reason")
            assert "--" in reason or "see above" in reason, (
                f"{path}:{k}: suppression without a reason"
            )


@pytest.mark.parametrize(
    "code,snippet",
    [
        ("CCS001", "import random\n_ccs_reintro = random.random()\n"),
        ("CCS001", "import numpy as np\n_ccs_reintro = np.random.seed(3)\n"),
        ("CCS002", "import time\n_ccs_reintro_t = time.time()\n"),
        ("CCS002", "from time import perf_counter\n_ccs_reintro_t = perf_counter()\n"),
    ],
)
def test_reintroduced_determinism_violation_fails(code, snippet):
    # Appending a global-RNG or wall-clock read to a real src module must
    # produce a finding — the invariant cannot be quietly reintroduced.
    target = SRC / "repro" / "sim" / "noise.py"
    source = target.read_text(encoding="utf-8") + "\n" + snippet
    report = analyze_source(source, str(target))
    assert any(f.code == code for f in report.findings)


# --------------------------------------------------------------------- #
# mypy (runs only where mypy is installed, e.g. CI)


def test_mypy_strict_core_passes():
    pytest.importorskip("mypy")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy"],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
