"""Tests for the whole-program determinism analysis (``repro.lint.flow``).

Covers the engine layers (program, call graph, purity, taint), the four
cross-file rules CCS009–CCS012 on multi-file fixture programs under
``tests/fixtures/lint/flow/``, SARIF output, the CLI's ``--format sarif``
and ``--time-budget`` flags, the baseline ratchet, and the robustness
guarantees (syntax errors degrade to CCS000, ``--write-baseline`` is
idempotent, suppressions on a final line without a trailing newline).

The fixture programs are deliberately *invisible* to the per-file rules:
each violation only exists across a call chain spanning several files,
which is exactly what the flow engine is for.
"""

import json
from pathlib import Path

import pytest

from repro.lint.analyzer import analyze_paths, analyze_source, analyze_sources
from repro.lint.baseline import Baseline
from repro.lint.cli import main as lint_main
from repro.lint.flow import (
    Program,
    analyze_program,
    build_callgraph,
    dotted_name,
    summarize,
    trace_taint,
)
from repro.lint.ratchet import added_entries, main as ratchet_main
from repro.lint.registry import all_rules
from repro.lint.rules.ccs009_impure_sink_path import ImpureSinkPathRule
from repro.lint.rules.ccs010_shared_worker_state import SharedWorkerStateRule
from repro.lint.rules.ccs011_unjournaled_mutation import UnjournaledMutationRule
from repro.lint.rules.ccs012_tainted_seed import TaintedSeedRule
from repro.lint.sarif import SARIF_SCHEMA_URI, SARIF_VERSION, render_sarif, to_sarif

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
FLOW_FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint" / "flow"

FLOW_RULES = (
    ImpureSinkPathRule,
    SharedWorkerStateRule,
    UnjournaledMutationRule,
    TaintedSeedRule,
)


def flow_items(name):
    """``(path, source, module)`` triples for one fixture program."""
    base = FLOW_FIXTURES / name
    items = []
    for path in sorted(base.rglob("*.py")):
        module = path.relative_to(base).as_posix()
        items.append((str(path), path.read_text(encoding="utf-8"), module))
    assert items, f"fixture program {name} is empty"
    return items


def flow_program(name):
    return Program.from_sources(flow_items(name))


def analyze_flow(name, rules=None):
    """All findings (across files) for one fixture program."""
    reports = analyze_sources(flow_items(name), rules=rules)
    findings = [f for r in reports for f in r.findings]
    suppressed = [f for r in reports for f in r.suppressed]
    return findings, suppressed


def chain_depth(message):
    """Call-chain hops rendered in a flow finding message."""
    return message.count(" -> ")


# ---------------------------------------------------------------------- #
# engine: program layer


def test_dotted_name_conversions():
    assert dotted_name("repro/service/kernel.py") == "repro.service.kernel"
    assert dotted_name("repro/lint/__init__.py") == "repro.lint"
    assert dotted_name("benchmarks/bench_exec.py") == "benchmarks.bench_exec"


def test_program_from_sources_skips_unparsable():
    items = [
        ("good.py", "x = 1\n", "pkg/good.py"),
        ("bad.py", "def broken(:\n", "pkg/bad.py"),
    ]
    program = Program.from_sources(items)
    assert "pkg.good" in program
    assert "pkg.bad" not in program


def test_program_resolve_prefix_longest_match():
    program = flow_program("ccs009_bad")
    hit = program.resolve_prefix("repro.service.journal.Journal.append")
    assert hit == ("repro.service.journal", "Journal.append")


def test_analyze_program_is_memoized():
    program = flow_program("ccs009_bad")
    assert analyze_program(program) is analyze_program(program)


# ---------------------------------------------------------------------- #
# engine: call graph


def callee_names(graph, qname):
    return {site.callee for site in graph.callees(qname)}


def test_callgraph_resolves_cross_module_chain():
    graph = build_callgraph(flow_program("ccs009_bad"))
    assert "repro.service.fmt.stamp" in callee_names(
        graph, "repro.service.journal.Journal.append"
    )
    assert "repro.service.meta.record_meta" in callee_names(
        graph, "repro.service.fmt.stamp"
    )


def test_callgraph_annotated_param_store_binds_attribute():
    # `self.journal = journal` with `journal: Optional[Journal]` in the
    # __init__ signature makes `self.journal.append(...)` resolve.
    graph = build_callgraph(flow_program("ccs011_ok"))
    assert "repro.service.journal.Journal.append" in callee_names(
        graph, "repro.service.kernel.ChargingService._journal"
    )


def test_callgraph_class_qualified_and_cls_calls_resolve():
    graph = build_callgraph(flow_program("ccs011_ok"))
    # `ChargingService.recover(path)` — same-module class-qualified call.
    assert "repro.service.kernel.ChargingService.recover" in callee_names(
        graph, "repro.service.kernel.ChargingService.reload"
    )
    # `cls()` inside the classmethod constructs the owner.
    assert "repro.service.kernel.ChargingService.__init__" in callee_names(
        graph, "repro.service.kernel.ChargingService.recover"
    )


def test_callgraph_decorator_subtree_is_not_an_edge():
    # @task_kind("point") runs at import time; the worker must not be
    # charged with calling (or reaching the effects of) its decorator.
    graph = build_callgraph(flow_program("ccs010_bad"))
    worker = "repro.experiments.exec.kinds.point"
    assert worker in graph.functions
    assert "repro.experiments.exec.task.task_kind" not in callee_names(graph, worker)


def test_callgraph_reachable_from_records_witness_chains():
    graph = build_callgraph(flow_program("ccs009_bad"))
    root = "repro.service.journal.Journal.append"
    chains = graph.reachable_from([root])
    assert chains[root] == (root,)
    assert chains["repro.service.meta.record_meta"] == (
        root,
        "repro.service.fmt.stamp",
        "repro.service.meta.record_meta",
    )


# ---------------------------------------------------------------------- #
# engine: purity and taint


def test_purity_transitive_impurity_with_witness():
    graph = build_callgraph(flow_program("ccs009_bad"))
    purity = summarize(graph)
    sink = "repro.service.journal.Journal.append"
    assert purity.is_impure(sink)
    chain, read = purity.impurity_chain(sink)
    assert chain[0] == sink
    assert chain[-1] == "repro.service.meta.record_meta"
    assert read is not None and read.dotted == "uuid.uuid4"


def test_purity_clean_program_is_pure():
    graph = build_callgraph(flow_program("ccs009_ok"))
    purity = summarize(graph)
    assert not purity.is_impure("repro.service.journal.Journal.append")


def test_taint_flows_through_returns_and_params():
    # host_token()'s return taints `token` in another file; the wrapper
    # seed_with() carries it into derive_seed through a parameter.
    graph = build_callgraph(flow_program("ccs012_bad"))
    report = trace_taint(graph, ("repro.rng.derive_seed",))
    assert "repro.experiments.hostid.host_token" in report.returns_tainted
    sources = {f.source for f in report.findings}
    assert "uuid.getnode" in sources
    (finding,) = [f for f in report.findings if f.source == "uuid.getnode"]
    assert finding.fn == "repro.experiments.seeding.make_seed"
    assert "repro.experiments.seeding.seed_with" in finding.chain


def test_taint_clean_program_has_no_findings():
    graph = build_callgraph(flow_program("ccs012_ok"))
    report = trace_taint(graph, ("repro.rng.derive_seed",))
    assert report.findings == []


# ---------------------------------------------------------------------- #
# rules: CCS009–CCS012 on multi-file fixture programs


def test_ccs009_fires_across_three_files():
    findings, _ = analyze_flow("ccs009_bad")
    assert sorted({f.code for f in findings}) == ["CCS009"]
    (finding,) = findings
    assert finding.module == "repro/service/meta.py"
    assert "uuid.uuid4" in finding.message
    assert "Journal.append" in finding.message
    assert chain_depth(finding.message) >= 2


def test_ccs009_clean_program():
    findings, _ = analyze_flow("ccs009_ok")
    assert findings == []


def test_ccs010_flags_cache_and_mutable_default():
    findings, _ = analyze_flow("ccs010_bad")
    assert sorted({f.code for f in findings}) == ["CCS010"]
    assert len(findings) == 2
    assert {f.module for f in findings} == {"repro/experiments/exec/helper.py"}
    messages = " | ".join(f.message for f in findings)
    assert "_CACHE" in messages
    assert "mutable default" in messages
    assert "kinds.point" in messages  # the worker the state is reachable from


def test_ccs010_clean_program():
    findings, _ = analyze_flow("ccs010_ok")
    assert findings == []


def test_ccs011_flags_unjournaled_public_mutation():
    findings, _ = analyze_flow("ccs011_bad")
    assert sorted({f.code for f in findings}) == ["CCS011"]
    (finding,) = findings
    assert finding.module == "repro/service/kernel.py"
    assert "ChargingService.submit" in finding.message
    assert chain_depth(finding.message) >= 2  # submit -> _admit -> _apply


def test_ccs011_journaled_and_replay_paths_are_clean():
    findings, _ = analyze_flow("ccs011_ok")
    assert findings == []


def test_ccs012_flags_tainted_seed_derivation():
    findings, _ = analyze_flow("ccs012_bad")
    assert sorted({f.code for f in findings}) == ["CCS012"]
    (finding,) = findings
    assert finding.module == "repro/experiments/seeding.py"
    assert "uuid.getnode" in finding.message
    assert "derive_seed" in finding.message


def test_ccs012_clean_program():
    findings, _ = analyze_flow("ccs012_ok")
    assert findings == []


@pytest.mark.parametrize(
    "name", ["ccs009_bad", "ccs010_bad", "ccs011_bad", "ccs012_bad"]
)
def test_flow_violations_are_invisible_to_per_file_rules(name):
    """The fixtures only violate *cross-file* properties by construction."""
    file_rules = [r for r in all_rules() if not r.whole_program]
    findings, _ = analyze_flow(name, rules=file_rules)
    assert findings == []


def test_flow_finding_routes_through_inline_suppression():
    items = []
    for path, source, module in flow_items("ccs009_bad"):
        if module == "repro/service/meta.py":
            line = '    return f"{event}:{uuid.uuid4().hex}"'
            source = source.replace(
                line, line + "  # ccs-lint: ignore[CCS009] -- test fixture"
            )
            assert "ignore[CCS009]" in source
        items.append((path, source, module))
    reports = analyze_sources(items)
    assert [f for r in reports for f in r.findings] == []
    suppressed = [f for r in reports for f in r.suppressed]
    assert [f.code for f in suppressed] == ["CCS009"]


def test_flow_rule_allow_list_filters_on_module():
    rule = ImpureSinkPathRule()
    rule.allow = ("repro/service/meta.py",)
    findings, _ = analyze_flow("ccs009_bad", rules=[rule])
    assert findings == []


# ---------------------------------------------------------------------- #
# gate: the real tree holds the cross-file properties


def test_src_tree_has_no_flow_findings():
    rules = [cls() for cls in FLOW_RULES]
    reports = analyze_paths([SRC], rules=rules)
    findings = [f for r in reports for f in r.findings]
    assert findings == [], "\n".join(
        f"{f.code} {f.module}:{f.line} {f.message}" for f in findings
    )


# ---------------------------------------------------------------------- #
# SARIF


def sample_findings():
    findings, _ = analyze_flow("ccs009_bad")
    more, _ = analyze_flow("ccs010_bad")
    return findings + more


def test_sarif_document_structure():
    doc = to_sarif(sample_findings())
    assert doc["version"] == SARIF_VERSION
    assert doc["$schema"] == SARIF_SCHEMA_URI
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "ccs-lint"
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert len(rule_ids) == len(set(rule_ids))
    assert rule_ids == sorted(rule_ids)
    assert "CCS000" in rule_ids  # the synthetic syntax-error rule
    for result in run["results"]:
        assert driver["rules"][result["ruleIndex"]]["id"] == result["ruleId"]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
        assert location["region"]["startLine"] >= 1
        assert result["message"]["text"]


def test_sarif_render_is_deterministic():
    findings = sample_findings()
    first = render_sarif(findings)
    second = render_sarif(list(reversed(findings)))
    assert first == second
    assert first.endswith("\n")
    json.loads(first)  # well-formed


def test_cli_format_sarif(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nrandom.seed(0)\n", encoding="utf-8")
    code = lint_main([str(bad), "--no-baseline", "--format", "sarif"])
    assert code == 1
    out = capsys.readouterr().out
    doc = json.loads(out)
    assert doc["version"] == SARIF_VERSION
    assert {r["ruleId"] for r in doc["runs"][0]["results"]}


def test_cli_format_sarif_clean_tree(tmp_path, capsys):
    ok = tmp_path / "ok.py"
    ok.write_text("x = 1\n", encoding="utf-8")
    assert lint_main([str(ok), "--no-baseline", "--format", "sarif"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["runs"][0]["results"] == []


# ---------------------------------------------------------------------- #
# CLI: --time-budget


def test_cli_time_budget_generous(tmp_path, capsys):
    ok = tmp_path / "ok.py"
    ok.write_text("x = 1\n", encoding="utf-8")
    assert lint_main([str(ok), "--no-baseline", "--time-budget", "60"]) == 0


def test_cli_time_budget_exceeded(tmp_path, capsys):
    ok = tmp_path / "ok.py"
    ok.write_text("x = 1\n", encoding="utf-8")
    assert lint_main([str(ok), "--no-baseline", "--time-budget", "0.0"]) == 1
    assert "budget" in capsys.readouterr().err


# ---------------------------------------------------------------------- #
# robustness


def test_syntax_error_degrades_to_ccs000(tmp_path, capsys):
    (tmp_path / "broken.py").write_text("def broken(:\n", encoding="utf-8")
    (tmp_path / "fine.py").write_text("import random\n", encoding="utf-8")
    # Library API: a structured finding, not an exception — and the flow
    # rules still run over the files that *did* parse.
    reports = analyze_paths([tmp_path])
    codes = sorted(f.code for r in reports for f in r.findings)
    assert "CCS000" in codes
    assert "CCS001" in codes
    # CLI: clean exit discipline, no traceback on stdout.
    assert lint_main([str(tmp_path), "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "CCS000" in out
    assert "Traceback" not in out


def test_write_baseline_is_idempotent(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nrandom.seed(7)\n", encoding="utf-8")
    baseline = tmp_path / "baseline.json"
    argv = [str(bad), "--baseline", str(baseline), "--write-baseline"]
    assert lint_main(argv) == 0
    first = baseline.read_bytes()
    assert lint_main(argv) == 0
    assert baseline.read_bytes() == first


def test_suppression_on_final_line_without_newline():
    source = "import random  # ccs-lint: ignore[CCS001] -- seeded via repro.rng"
    assert not source.endswith("\n")
    report = analyze_source(source, "snippet.py")
    assert report.findings == []
    assert [f.code for f in report.suppressed] == ["CCS001"]


# ---------------------------------------------------------------------- #
# baseline ratchet


def write_baseline_doc(path, entries):
    doc = {
        "version": 1,
        "findings": [
            {"code": c, "module": m, "content": s} for c, m, s in entries
        ],
    }
    path.write_text(json.dumps(doc), encoding="utf-8")


ENTRY = ("CCS001", "repro/a.py", "import random")


def test_ratchet_holds_when_baseline_shrinks(tmp_path, capsys):
    ref = tmp_path / "ref.json"
    prop = tmp_path / "prop.json"
    write_baseline_doc(ref, [ENTRY])
    write_baseline_doc(prop, [])
    assert ratchet_main([str(ref), str(prop)]) == 0
    assert "ratchet: ok" in capsys.readouterr().err


def test_ratchet_fails_when_baseline_grows(tmp_path, capsys):
    ref = tmp_path / "ref.json"
    prop = tmp_path / "prop.json"
    write_baseline_doc(ref, [])
    write_baseline_doc(prop, [ENTRY])
    assert ratchet_main([str(ref), str(prop)]) == 1
    err = capsys.readouterr().err
    assert "CCS001" in err and "import random" in err


def test_ratchet_missing_reference_counts_as_empty(tmp_path):
    prop = tmp_path / "prop.json"
    write_baseline_doc(prop, [ENTRY])
    assert ratchet_main([str(tmp_path / "absent.json"), str(prop)]) == 1
    write_baseline_doc(prop, [])
    assert ratchet_main([str(tmp_path / "absent.json"), str(prop)]) == 0


def test_ratchet_respects_multiplicity(tmp_path):
    ref = tmp_path / "ref.json"
    prop = tmp_path / "prop.json"
    write_baseline_doc(ref, [ENTRY])
    write_baseline_doc(prop, [ENTRY, ENTRY])
    added = added_entries(Baseline.load(ref), Baseline.load(prop))
    assert added == [(ENTRY, 1)]
    assert ratchet_main([str(ref), str(prop)]) == 1


def test_ratchet_usage_and_bad_file_exit_two(tmp_path, capsys):
    assert ratchet_main([]) == 2
    bad = tmp_path / "bad.json"
    bad.write_text("{}", encoding="utf-8")
    assert ratchet_main([str(bad), str(bad)]) == 2
