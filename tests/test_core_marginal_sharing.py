"""Tests for the marginal-cost sharing extension."""

from __future__ import annotations

import pytest

from repro.core import MarginalCostSharing, ccsga
from repro.workloads import quick_instance


@pytest.fixture
def inst():
    return quick_instance(n_devices=8, n_chargers=3, seed=17, capacity=5)


class TestMarginalCostSharing:
    def test_rebalanced_is_budget_balanced(self, inst):
        scheme = MarginalCostSharing(rebalance=True)
        members = list(range(6))
        shares = scheme.shares(inst, members, 0)
        assert sum(shares.values()) == pytest.approx(
            inst.charging_price(members, 0)
        )

    def test_raw_marginals_underrecover(self, inst):
        scheme = MarginalCostSharing(rebalance=False)
        members = list(range(6))
        shares = scheme.shares(inst, members, 0)
        price = inst.charging_price(members, 0)
        assert sum(shares.values()) < price  # the budget-balance failure

    def test_deficit_matches_raw_shortfall(self, inst):
        scheme = MarginalCostSharing(rebalance=False)
        members = list(range(5))
        shares = scheme.shares(inst, members, 1)
        price = inst.charging_price(members, 1)
        assert scheme.deficit(inst, members, 1) == pytest.approx(
            price - sum(shares.values())
        )

    def test_deficit_nonnegative_and_zero_for_singletons(self, inst):
        scheme = MarginalCostSharing()
        assert scheme.deficit(inst, [3], 0) == pytest.approx(0.0)
        for size in (2, 4, 6):
            assert scheme.deficit(inst, list(range(size)), 0) >= -1e-9

    def test_deficit_grows_with_group_size(self, inst):
        # Every extra member adds one more under-recovered base-fee slice.
        scheme = MarginalCostSharing()
        deficits = [scheme.deficit(inst, list(range(t)), 0) for t in (2, 4, 6)]
        assert deficits[0] < deficits[1] < deficits[2]

    def test_singleton_pays_full_price(self, inst):
        for rebalance in (True, False):
            scheme = MarginalCostSharing(rebalance=rebalance)
            shares = scheme.shares(inst, [2], 0)
            assert shares[2] == pytest.approx(inst.charging_price([2], 0))

    def test_drives_ccsga_to_equilibrium(self, inst):
        res = ccsga(inst, scheme=MarginalCostSharing())
        assert res.nash_certified
        assert res.trace.is_strictly_decreasing()
