"""Unit tests for Device and CCSInstance."""

from __future__ import annotations

import pytest

from repro.core import CCSInstance, Device
from repro.errors import ConfigurationError
from repro.geometry import Point
from repro.mobility import ManhattanMobility
from repro.wpt import Charger, LinearTariff


class TestDevice:
    def test_valid_construction(self):
        d = Device("d0", Point(1, 2), demand=10.0)
        assert d.moving_rate == 0.05 and d.speed == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(device_id="", position=Point(0, 0), demand=1.0),
            dict(device_id="d", position=Point(0, 0), demand=0.0),
            dict(device_id="d", position=Point(0, 0), demand=-1.0),
            dict(device_id="d", position=Point(0, 0), demand=1.0, moving_rate=-0.1),
            dict(device_id="d", position=Point(0, 0), demand=1.0, speed=0.0),
        ],
    )
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ConfigurationError):
            Device(**kwargs)

    def test_devices_are_frozen(self):
        d = Device("d0", Point(0, 0), demand=1.0)
        with pytest.raises(AttributeError):
            d.demand = 2.0


class TestInstanceConstruction:
    def test_empty_devices_rejected(self, tiny_instance):
        with pytest.raises(ConfigurationError):
            CCSInstance(devices=[], chargers=list(tiny_instance.chargers))

    def test_empty_chargers_rejected(self, tiny_instance):
        with pytest.raises(ConfigurationError):
            CCSInstance(devices=list(tiny_instance.devices), chargers=[])

    def test_duplicate_device_ids_rejected(self):
        d = Device("dup", Point(0, 0), demand=1.0)
        c = Charger("c", Point(0, 0), tariff=LinearTariff(base=1.0, unit=0.1))
        with pytest.raises(ConfigurationError):
            CCSInstance(devices=[d, d], chargers=[c])

    def test_duplicate_charger_ids_rejected(self):
        d = Device("d", Point(0, 0), demand=1.0)
        c = Charger("dup", Point(0, 0), tariff=LinearTariff(base=1.0, unit=0.1))
        with pytest.raises(ConfigurationError):
            CCSInstance(devices=[d], chargers=[c, c])

    def test_strict_mode_rejects_convex_tariff(self):
        class ConvexTariff:
            base = 1.0

            def volume_charge(self, e):
                return e**2

            def session_price(self, e):
                return 0.0 if e == 0 else self.base + self.volume_charge(e)

        d = Device("d", Point(0, 0), demand=10.0)
        c = Charger("c", Point(0, 0), tariff=ConvexTariff())
        with pytest.raises(ConfigurationError, match="not concave"):
            CCSInstance(devices=[d], chargers=[c])
        # non-strict accepts heuristically
        inst = CCSInstance(devices=[d], chargers=[c], strict=False)
        assert inst.n_devices == 1


class TestInstanceQueries:
    def test_sizes(self, tiny_instance):
        assert tiny_instance.n_devices == 4
        assert tiny_instance.n_chargers == 2

    def test_index_lookup(self, tiny_instance):
        assert tiny_instance.device_index("d2") == 2
        assert tiny_instance.charger_index("B") == 1
        with pytest.raises(KeyError):
            tiny_instance.device_index("nope")
        with pytest.raises(KeyError):
            tiny_instance.charger_index("nope")

    def test_distance_and_moving_cost(self, linear_instance):
        # d1 at (3,4), charger at origin: distance 5, rate 2 -> cost 10.
        assert linear_instance.distance(1, 0) == pytest.approx(5.0)
        assert linear_instance.moving_cost(1, 0) == pytest.approx(10.0)

    def test_moving_cost_respects_mobility_model(self):
        d = Device("d", Point(3.0, 4.0), demand=1.0, moving_rate=1.0)
        c = Charger("c", Point(0, 0), tariff=LinearTariff(base=1.0, unit=0.01))
        inst = CCSInstance(devices=[d], chargers=[c], mobility=ManhattanMobility())
        assert inst.moving_cost(0, 0) == pytest.approx(7.0)

    def test_charging_price_hand_computed(self, linear_instance):
        # demands 100+200=300 stored, efficiency 0.5 -> emitted 600,
        # price = 5 + 0.1*600 = 65.
        assert linear_instance.charging_price([0, 1], 0) == pytest.approx(65.0)

    def test_charging_price_empty_group_free(self, linear_instance):
        assert linear_instance.charging_price([], 0) == 0.0

    def test_group_cost_is_price_plus_moving(self, linear_instance):
        price = linear_instance.charging_price([0, 1], 0)
        moving = linear_instance.moving_cost(0, 0) + linear_instance.moving_cost(1, 0)
        assert linear_instance.group_cost([0, 1], 0) == pytest.approx(price + moving)

    def test_group_cost_empty_is_zero(self, linear_instance):
        assert linear_instance.group_cost([], 0) == 0.0

    def test_standalone_cost_is_min_over_chargers(self, tiny_instance):
        for i in range(tiny_instance.n_devices):
            expected = min(
                tiny_instance.group_cost([i], j) for j in range(tiny_instance.n_chargers)
            )
            assert tiny_instance.standalone_cost(i) == pytest.approx(expected)

    def test_total_demand(self, tiny_instance):
        assert tiny_instance.total_demand([0, 1]) == pytest.approx(2500.0)

    def test_capacity_of(self, tiny_instance, linear_instance):
        assert tiny_instance.capacity_of(0) == 3
        assert linear_instance.capacity_of(0) is None

    def test_describe_mentions_sizes(self, tiny_instance):
        text = tiny_instance.describe()
        assert "4 devices" in text and "2 chargers" in text

    def test_describe_capacity_summaries(self, linear_instance):
        from repro.core import CCSInstance, Device
        from repro.geometry import Point
        from repro.wpt import Charger, LinearTariff

        # All-unbounded: the simple label.
        assert "unbounded" in linear_instance.describe()

        # Mixed finite/unbounded capacities: numeric caps sorted
        # numerically, unbounded listed last — no stringified interleaving.
        devices = [Device("d0", Point(0.0, 0.0), demand=10.0)]
        chargers = [
            Charger("a", Point(0.0, 0.0), tariff=LinearTariff(5.0, 0.1), capacity=12),
            Charger("b", Point(1.0, 0.0), tariff=LinearTariff(5.0, 0.1), capacity=2),
            Charger("c", Point(2.0, 0.0), tariff=LinearTariff(5.0, 0.1), capacity=None),
        ]
        text = CCSInstance(devices=devices, chargers=chargers).describe()
        assert "capacities [2, 12, unbounded]" in text


class TestGroupCostStructure:
    def test_group_cost_is_subadditive(self, tiny_instance):
        # Cooperation lemma: merging groups at one charger never costs more.
        whole = tiny_instance.group_cost([0, 1, 2], 0)
        parts = tiny_instance.group_cost([0, 1], 0) + tiny_instance.group_cost([2], 0)
        assert whole <= parts + 1e-9

    def test_group_cost_monotone_in_members(self, tiny_instance):
        assert tiny_instance.group_cost([0], 0) <= tiny_instance.group_cost([0, 1], 0)
