"""Edge-case tests for the online scheduler building blocks."""

from __future__ import annotations

import pytest

from repro.core import Device, ccsga
from repro.errors import ConfigurationError
from repro.geometry import Field, Point, grid_deployment
from repro.mobility import ManhattanMobility
from repro.online import (
    Arrival,
    BatchScheduler,
    GreedyDispatch,
    OnlineRun,
    OpenSession,
    evaluate_policy,
    poisson_arrivals,
)
from repro.wpt import Charger, PowerLawTariff

FIELD = Field.square(200.0)


def make_chargers(capacity=4):
    return [
        Charger(
            f"c{j}", p,
            tariff=PowerLawTariff(base=20.0, unit=2e-3, exponent=0.9),
            efficiency=0.8, capacity=capacity,
        )
        for j, p in enumerate(grid_deployment(FIELD, 3))
    ]


def arrival(k, t, x=50.0, y=50.0, demand=15e3):
    return Arrival(
        time=t, device=Device(f"m{k}", Point(x, y), demand=demand, moving_rate=0.05)
    )


class TestOpenSession:
    def test_demands_tracks_members(self):
        s = OpenSession(charger=0, opened_at=0.0)
        s.members.append(Device("d", Point(0, 0), demand=7.0))
        assert s.demands() == [7.0]


class TestOnlineRun:
    def test_close_expired_moves_sessions(self):
        chargers = make_chargers()
        run = OnlineRun(chargers=chargers, mobility=ManhattanMobility())
        run.open_sessions.append(OpenSession(charger=0, opened_at=0.0))
        run.open_sessions.append(OpenSession(charger=1, opened_at=50.0))
        run.close_expired(now=60.0, window=30.0)
        assert len(run.open_sessions) == 1
        assert len(run.closed_sessions) == 1
        assert run.open_sessions[0].opened_at == 50.0

    def test_finish_drops_empty_sessions(self):
        chargers = make_chargers()
        run = OnlineRun(chargers=chargers, mobility=ManhattanMobility())
        d = Device("d", Point(10, 10), demand=5e3)
        run.devices.append(d)
        run.open_sessions.append(OpenSession(charger=0, opened_at=0.0, members=[d]))
        run.open_sessions.append(OpenSession(charger=1, opened_at=0.0))  # empty
        schedule, instance = run.finish("t")
        assert schedule.n_sessions == 1
        assert instance.n_devices == 1

    def test_finish_without_devices_rejected(self):
        run = OnlineRun(chargers=make_chargers(), mobility=ManhattanMobility())
        with pytest.raises(ConfigurationError):
            run.finish("t")


class TestPolicyEdgeCases:
    def test_single_arrival(self):
        schedule, instance = GreedyDispatch().run(
            [arrival(0, 1.0)], make_chargers()
        )
        assert schedule.n_sessions == 1
        assert instance.n_devices == 1

    def test_simultaneous_arrivals_group(self):
        arrivals = [arrival(k, 10.0, x=50.0 + k, y=50.0) for k in range(3)]
        schedule, _ = GreedyDispatch(window=60.0).run(arrivals, make_chargers())
        assert any(s.size > 1 for s in schedule.sessions)

    def test_capacity_forces_session_rollover(self):
        arrivals = [arrival(k, 10.0 + k, x=50.0, y=50.0) for k in range(6)]
        schedule, _ = GreedyDispatch(window=1e9).run(
            arrivals, make_chargers(capacity=2)
        )
        assert all(s.size <= 2 for s in schedule.sessions)
        assert schedule.n_sessions >= 3

    def test_custom_mobility_respected(self):
        arrivals = [arrival(0, 1.0, x=0.0, y=0.0)]
        _, instance = GreedyDispatch().run(
            arrivals, make_chargers(), mobility=ManhattanMobility()
        )
        p = instance.devices[0].position
        q = instance.chargers[0].position
        expected = instance.devices[0].moving_rate * p.manhattan_distance_to(q)
        assert instance.moving_cost(0, 0) == pytest.approx(expected)

    def test_batch_flushes_trailing_partial_window(self):
        arrivals = [arrival(k, 10.0 * k) for k in range(5)]
        schedule, instance = BatchScheduler(window=25.0).run(
            arrivals, make_chargers()
        )
        assert schedule.covered_devices() == frozenset(range(instance.n_devices))

    def test_custom_offline_solver_in_harness(self):
        arrivals = poisson_arrivals(10, rate=0.05, field=FIELD, rng=4)
        out = evaluate_policy(
            GreedyDispatch(window=60.0),
            arrivals,
            make_chargers(),
            offline_solver=lambda inst: ccsga(inst, certify=False).schedule,
        )
        assert out.offline_cost > 0
