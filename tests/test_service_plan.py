"""Tests for the growable plan layer: the instance facade, the mutable
coalition structure, and — critically — the *incrementality* of the
replanner (bounded per-request work, zero full re-solves)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CCSInstance, Device
from repro.core.costsharing import EgalitarianSharing
from repro.geometry import Point
from repro.service import GrowableCoalitionStructure, IncrementalPlanner, PlanInstance
from repro.wpt import Charger


def make_chargers(capacity=None):
    return [
        Charger(charger_id="c0", position=Point(10.0, 10.0), capacity=capacity),
        Charger(charger_id="c1", position=Point(90.0, 90.0), capacity=capacity),
        Charger(charger_id="c2", position=Point(50.0, 50.0), capacity=capacity),
    ]


def device(k, x, y, demand=20e3):
    return Device(device_id=f"d{k}", position=Point(x, y), demand=demand)


def spread_devices(n, seed=0):
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0.0, 100.0, size=n)
    ys = rng.uniform(0.0, 100.0, size=n)
    ds = rng.uniform(10e3, 40e3, size=n)
    return [device(k, float(x), float(y), float(d)) for k, (x, y, d) in enumerate(zip(xs, ys, ds))]


class TestPlanInstance:
    def test_matches_ccsinstance_surface(self):
        chargers = make_chargers()
        devices = spread_devices(12, seed=4)
        plan = PlanInstance(chargers)
        for d in devices:
            plan.add_device(d)
        ref = CCSInstance(devices=devices, chargers=chargers, mobility=plan.mobility)
        np.testing.assert_allclose(
            plan.singleton_cost_matrix(), ref.singleton_cost_matrix()
        )
        np.testing.assert_allclose(
            plan.singleton_price_matrix(), ref.singleton_price_matrix()
        )
        group = [0, 3, 7]
        for j in range(plan.n_chargers):
            assert plan.group_cost(group, j) == pytest.approx(ref.group_cost(group, j))
            assert plan.charging_price(group, j) == pytest.approx(
                ref.charging_price(group, j)
            )
        assert plan.total_demand(group) == pytest.approx(ref.total_demand(group))

    def test_buffers_grow_past_initial_capacity(self):
        plan = PlanInstance(make_chargers())
        devices = spread_devices(50, seed=1)
        for d in devices:
            plan.add_device(d)
        assert plan.n_devices == 50
        assert plan.singleton_cost_matrix().shape == (50, 3)

    def test_best_singleton_picks_cheapest(self):
        plan = PlanInstance(make_chargers())
        cost, j = plan.best_singleton(device(0, 12.0, 12.0))
        assert j == 0
        row_cost = plan.quote_rows(device(0, 12.0, 12.0))
        assert cost == pytest.approx(float((row_cost[0] + row_cost[1]).min()))


class TestGrowableStructure:
    def make(self, n=6, capacity=None):
        plan = PlanInstance(make_chargers(capacity))
        st = GrowableCoalitionStructure(plan, EgalitarianSharing())
        for d in spread_devices(n, seed=9):
            st.register_device(plan.add_device(d))
        return plan, st

    def test_place_remove_retire_keep_invariants(self):
        plan, st = self.make(6)
        st.place(0, None, 0)
        st.place(1, None, 0)
        c = st.coalition_of(0)
        st.place(2, c.cid, 0)
        st.check_invariants()
        st.remove(1)
        st.check_invariants()
        st.retire(st.coalition_of(0).cid)
        st.check_invariants()
        assert not st.is_placed(0) and not st.is_placed(2)

    def test_place_respects_capacity(self):
        plan, st = self.make(3, capacity=1)
        st.place(0, None, 0)
        cid = st.coalition_of(0).cid
        with pytest.raises(ValueError):
            st.place(1, cid, 0)

    def test_double_place_rejected(self):
        plan, st = self.make(2)
        st.place(0, None, 0)
        with pytest.raises(ValueError):
            st.place(0, None, 1)

    def test_remove_empties_coalition(self):
        plan, st = self.make(2)
        st.place(0, None, 2)
        cid = st.coalition_of(0).cid
        st.remove(0)
        assert cid not in st._coalitions
        st.check_invariants()


class TestIncrementalPlanner:
    def test_fold_satisfies_quotes(self):
        planner = IncrementalPlanner(make_chargers())
        indices = []
        for d in spread_devices(20, seed=2):
            cost, _ = planner.quote(d)
            indices.append(planner.add(d, ceiling=cost))
        planner.fold(indices)
        planner.structure.check_invariants()
        for i in planner.active_indices():
            assert planner.individual_cost(i) <= planner.ceiling[i] + 1e-9

    def test_remove_repairs_survivors(self):
        planner = IncrementalPlanner(make_chargers())
        batch = []
        for d in spread_devices(10, seed=6):
            cost, _ = planner.quote(d)
            batch.append(planner.add(d, ceiling=cost))
        planner.fold(batch)
        planner.remove(batch[0])
        planner.structure.check_invariants()
        for i in planner.active_indices():
            assert planner.individual_cost(i) <= planner.ceiling[i] + 1e-9

    def test_retire_returns_full_accounting(self):
        planner = IncrementalPlanner(make_chargers())
        batch = []
        for d in spread_devices(6, seed=3):
            cost, _ = planner.quote(d)
            batch.append(planner.add(d, ceiling=cost))
        planner.fold(batch)
        cid = planner.live_cids()[0]
        info = planner.retire(cid)
        assert set(info) == {"charger", "members", "price", "demands", "shares", "moving"}
        assert sorted(info["shares"]) == info["members"]
        assert sum(info["shares"].values()) == pytest.approx(info["price"])
        planner.structure.check_invariants()

    def test_capacity_one_forces_singletons(self):
        # Capacity bounds *session size*, not sessions per charger: with
        # capacity 1 nobody can ever join, so every fold lands every
        # device in its own singleton at exactly its quote.
        planner = IncrementalPlanner(make_chargers(capacity=1))
        batch = []
        for d in spread_devices(6, seed=8):
            cost, _ = planner.quote(d)
            batch.append(planner.add(d, ceiling=cost))
        planner.fold(batch)
        assert planner.structure.n_coalitions == 6
        for i in planner.active_indices():
            assert planner.individual_cost(i) == pytest.approx(planner.ceiling[i])


class TestIncrementality:
    """The tentpole acceptance criterion: per-request replanning work is
    bounded by the *live* plan size, never by the history length, and no
    code path ever re-solves from scratch."""

    def test_full_solves_is_structurally_zero(self):
        planner = IncrementalPlanner(make_chargers())
        for d in spread_devices(30, seed=12):
            cost, _ = planner.quote(d)
            planner.fold([planner.add(d, ceiling=cost)])
        assert planner.ops["full_solves"] == 0

    def test_per_request_candidate_work_stays_bounded(self):
        # Feed requests one fold at a time while *retiring* sessions so
        # the live plan stays at O(K) devices — the steady state of a
        # long-running service.  If insertion, improvement, or repair
        # scanned history rather than the live plan, per-request
        # candidate counts would grow linearly over the run; with the
        # live plan bounded they must stay flat.
        planner = IncrementalPlanner(make_chargers())
        devices = spread_devices(120, seed=5)
        per_request = []
        for d in devices:
            before = (
                planner.ops["insert_candidates"] + planner.ops["scan_candidates"]
            )
            cost, _ = planner.quote(d)
            planner.fold([planner.add(d, ceiling=cost)])
            per_request.append(
                planner.ops["insert_candidates"]
                + planner.ops["scan_candidates"]
                - before
            )
            while len(planner.active_indices()) > 12:
                planner.retire(planner.live_cids()[0])
        early = sum(per_request[10:30]) / 20.0
        late = sum(per_request[100:120]) / 20.0
        # Work per request must not trend upward with history (allow 50%
        # noise headroom; an O(history) regression would be ~4x).
        assert late <= early * 1.5 + 5.0
        assert planner.ops["full_solves"] == 0

    def test_fold_batch_work_scales_with_batch_and_plan(self):
        planner = IncrementalPlanner(make_chargers())
        batch = []
        for d in spread_devices(25, seed=7):
            cost, _ = planner.quote(d)
            batch.append(planner.add(d, ceiling=cost))
        planner.fold(batch)
        live = planner.structure.n_coalitions + planner.instance.n_chargers
        # Insertion: one candidate per (live coalition or charger) per
        # inserted device — crude upper bound with the plan at final size.
        assert planner.ops["insert_candidates"] <= 25 * (25 + 3)
        assert planner.ops["full_solves"] == 0
        assert live >= 1
