"""Fast sharded-service smoke: the ``make shard-smoke`` gate.

Two checks, sized for CI seconds rather than minutes: a 4-shard replay
that must agree with the live facade, and the 1-shard byte-identity
spot check.  The full-depth versions live in test_shard_parallel.py and
test_shard_identity.py; this marker exists so the sharding subsystem has
a dedicated quick gate (satellite 5).
"""

from __future__ import annotations

import pytest

from repro.geometry import Field, Point
from repro.service import ChargingService, ServiceConfig, generate_requests
from repro.shard import (
    ShardedService,
    replay_sharded,
    shard_journal_name,
)
from repro.wpt import Charger

FIELD = Field(100.0, 100.0)
CONFIG = ServiceConfig(epoch=60.0, window=120.0)


def quad_chargers():
    return [
        Charger(charger_id="c0", position=Point(25.0, 25.0)),
        Charger(charger_id="c1", position=Point(75.0, 25.0)),
        Charger(charger_id="c2", position=Point(25.0, 75.0)),
        Charger(charger_id="c3", position=Point(75.0, 75.0)),
    ]


@pytest.mark.shard_smoke
def test_four_shard_replay_matches_live():
    stream = generate_requests(
        12, rate=0.2, deadline_slack=900.0, max_price_factor=1.3, rng=31
    )
    svc = ShardedService(
        quad_chargers(), n_shards=4, field=FIELD, halo=10.0, config=CONFIG
    )
    for r in stream:
        svc.submit(r)
    svc.drain()
    replayed = replay_sharded(
        quad_chargers(), stream, n_shards=4, field=FIELD, halo=10.0,
        config=CONFIG,
    )
    assert replayed["counts"] == svc.counts()
    assert replayed["schedule"] == svc.final_schedule()
    assert replayed["metrics"] == svc.metrics_snapshot()


@pytest.mark.shard_smoke
def test_one_shard_byte_identity(tmp_path):
    stream = generate_requests(
        12, rate=0.2, deadline_slack=900.0, max_price_factor=1.3, rng=31
    )
    ref = ChargingService(
        quad_chargers(), config=CONFIG, journal_path=tmp_path / "ref.jsonl",
        journal_sync=False,
    )
    svc = ShardedService(
        quad_chargers(), n_shards=1, config=CONFIG,
        journal_dir=tmp_path / "sharded", journal_sync=False,
    )
    for r in stream:
        ref.submit(r)
        svc.submit(r)
    ref.drain()
    svc.drain()
    ref.journal.close()
    svc.close()
    assert (tmp_path / "sharded" / shard_journal_name(0)).read_bytes() == (
        (tmp_path / "ref.jsonl").read_bytes()
    )
    assert svc.final_schedule() == ref.final_schedule()
    assert svc.metrics_snapshot() == ref.metrics_snapshot()
