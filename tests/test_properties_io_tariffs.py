"""Property-based tests (hypothesis) for serialization and tariffs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.io import instance_from_dict, instance_to_dict, schedule_from_dict, schedule_to_dict
from repro.core import ccsa, comprehensive_cost
from repro.submodular import SetFunction, is_submodular
from repro.workloads import quick_instance
from repro.wpt import (
    LinearTariff,
    PiecewiseConcaveTariff,
    PowerLawTariff,
    is_concave_nondecreasing,
)

instances = st.builds(
    quick_instance,
    n_devices=st.integers(min_value=2, max_value=10),
    n_chargers=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=100_000),
    capacity=st.sampled_from([None, 4]),
    tariff_exponent=st.sampled_from([0.7, 1.0]),
)

power_tariffs = st.builds(
    PowerLawTariff,
    base=st.floats(min_value=0.0, max_value=100.0),
    unit=st.floats(min_value=0.0, max_value=10.0),
    exponent=st.floats(min_value=0.1, max_value=1.0),
)


@st.composite
def piecewise_tariffs(draw):
    n_breaks = draw(st.integers(min_value=1, max_value=4))
    gaps = draw(
        st.lists(
            st.floats(min_value=1.0, max_value=100.0),
            min_size=n_breaks, max_size=n_breaks,
        )
    )
    breakpoints = []
    acc = 0.0
    for g in gaps:
        acc += g
        breakpoints.append(acc)
    prices = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=5.0),
                min_size=n_breaks + 1, max_size=n_breaks + 1,
            )
        ),
        reverse=True,
    )
    base = draw(st.floats(min_value=0.0, max_value=50.0))
    return PiecewiseConcaveTariff(base=base, breakpoints=breakpoints, marginal_prices=prices)


class TestIoProperties:
    @settings(max_examples=20, deadline=None)
    @given(inst=instances)
    def test_instance_round_trip_preserves_objective(self, inst):
        restored = instance_from_dict(instance_to_dict(inst))
        sched = ccsa(inst)
        restored_sched = schedule_from_dict(
            schedule_to_dict(sched, inst), restored
        )
        assert comprehensive_cost(restored_sched, restored) == pytest.approx(
            comprehensive_cost(sched, inst), rel=1e-12
        )

    @settings(max_examples=20, deadline=None)
    @given(inst=instances)
    def test_round_trip_idempotent(self, inst):
        once = instance_to_dict(inst)
        twice = instance_to_dict(instance_from_dict(once))
        assert once == twice


class TestTariffProperties:
    @settings(max_examples=40, deadline=None)
    @given(tariff=power_tariffs, e=st.floats(min_value=0.001, max_value=1e6))
    def test_power_law_price_positive_and_monotone(self, tariff, e):
        assert tariff.session_price(e) >= tariff.base
        assert tariff.session_price(2 * e) >= tariff.session_price(e)

    @settings(max_examples=30, deadline=None)
    @given(tariff=power_tariffs)
    def test_power_law_passes_concavity_checker(self, tariff):
        assert is_concave_nondecreasing(tariff, e_max=1e5)

    @settings(max_examples=30, deadline=None)
    @given(tariff=piecewise_tariffs())
    def test_random_piecewise_tariffs_are_concave(self, tariff):
        assert is_concave_nondecreasing(tariff, e_max=tariff.breakpoints[-1] * 3)

    @settings(max_examples=25, deadline=None)
    @given(
        tariff=piecewise_tariffs(),
        e1=st.floats(min_value=0.1, max_value=500.0),
        e2=st.floats(min_value=0.1, max_value=500.0),
    )
    def test_piecewise_subadditive_with_base(self, tariff, e1, e2):
        merged = tariff.session_price(e1 + e2)
        separate = tariff.session_price(e1) + tariff.session_price(e2)
        assert merged <= separate + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(
        tariff=st.one_of(power_tariffs, piecewise_tariffs()),
        weights=st.lists(
            st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=6
        ),
    )
    def test_session_cost_from_any_tariff_is_submodular(self, tariff, weights):
        def fn(s):
            if not s:
                return 0.0
            return tariff.session_price(sum(weights[i] for i in s))

        assert is_submodular(SetFunction(len(weights), fn))

    @settings(max_examples=30, deadline=None)
    @given(
        base=st.floats(min_value=0.0, max_value=100.0),
        unit=st.floats(min_value=0.0, max_value=10.0),
        e=st.floats(min_value=0.0, max_value=1e5),
    )
    def test_linear_equals_power_law_at_exponent_one(self, base, unit, e):
        lin = LinearTariff(base=base, unit=unit)
        pw = PowerLawTariff(base=base, unit=unit, exponent=1.0)
        assert lin.session_price(e) == pytest.approx(pw.session_price(e))
