"""Shared fixtures for the test suite.

Fixtures build small, fully deterministic problem instances so tests are
fast and failures reproduce exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CCSInstance, Device
from repro.geometry import Field, Point
from repro.wpt import Charger, LinearTariff, PowerLawTariff
from repro.workloads import quick_instance


@pytest.fixture
def rng():
    """A deterministic numpy Generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_instance():
    """Four devices, two chargers, hand-placed — costs easy to reason about.

    Devices 0/1 sit near charger A (left), devices 2/3 near charger B
    (right); the base fee makes pairing up clearly worthwhile.
    """
    devices = [
        Device("d0", Point(0.0, 0.0), demand=1000.0, moving_rate=0.1),
        Device("d1", Point(10.0, 0.0), demand=1500.0, moving_rate=0.1),
        Device("d2", Point(90.0, 0.0), demand=2000.0, moving_rate=0.1),
        Device("d3", Point(100.0, 0.0), demand=1200.0, moving_rate=0.1),
    ]
    chargers = [
        Charger(
            "A", Point(5.0, 5.0),
            tariff=PowerLawTariff(base=10.0, unit=0.01, exponent=0.9),
            efficiency=0.8, capacity=3,
        ),
        Charger(
            "B", Point(95.0, 5.0),
            tariff=PowerLawTariff(base=12.0, unit=0.009, exponent=0.9),
            efficiency=0.8, capacity=3,
        ),
    ]
    return CCSInstance(devices=devices, chargers=chargers, field_area=Field(100.0, 10.0))


@pytest.fixture
def linear_instance():
    """Three devices, one charger, linear tariff — costs computable by hand."""
    devices = [
        Device("d0", Point(0.0, 0.0), demand=100.0, moving_rate=1.0),
        Device("d1", Point(3.0, 4.0), demand=200.0, moving_rate=2.0),
        Device("d2", Point(6.0, 8.0), demand=300.0, moving_rate=0.5),
    ]
    chargers = [
        Charger(
            "only", Point(0.0, 0.0),
            tariff=LinearTariff(base=5.0, unit=0.1),
            efficiency=0.5, capacity=None,
        ),
    ]
    return CCSInstance(devices=devices, chargers=chargers)


@pytest.fixture
def random_instance():
    """A seeded mid-size random instance for solver integration tests."""
    return quick_instance(n_devices=12, n_chargers=3, seed=99, capacity=5)
