"""Unit tests for the mobility substrate."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.geometry import Point
from repro.mobility import (
    LinearMobility,
    ManhattanMobility,
    MobilityModel,
    QuadraticMobility,
    Trip,
)

A = Point(0.0, 0.0)
B = Point(3.0, 4.0)  # distance 5 from A


class TestModels:
    def test_linear_cost(self):
        m = LinearMobility()
        assert m.moving_cost(A, B, rate=2.0) == pytest.approx(10.0)

    def test_linear_travel_time(self):
        assert LinearMobility().travel_time(A, B, speed=2.5) == pytest.approx(2.0)

    def test_quadratic_exceeds_linear_on_long_trips(self):
        lin = LinearMobility()
        quad = QuadraticMobility(curvature=0.01)
        far = Point(100.0, 0.0)
        assert quad.moving_cost(A, far, 1.0) > lin.moving_cost(A, far, 1.0)

    def test_quadratic_reduces_to_linear_at_zero_curvature(self):
        quad = QuadraticMobility(curvature=0.0)
        assert quad.moving_cost(A, B, 1.5) == pytest.approx(7.5)

    def test_manhattan_cost(self):
        m = ManhattanMobility()
        assert m.moving_cost(A, B, rate=1.0) == pytest.approx(7.0)
        assert m.travel_time(A, B, speed=7.0) == pytest.approx(1.0)

    def test_all_satisfy_protocol(self):
        for m in (LinearMobility(), QuadraticMobility(), ManhattanMobility()):
            assert isinstance(m, MobilityModel)

    def test_zero_distance_is_free(self):
        for m in (LinearMobility(), QuadraticMobility(), ManhattanMobility()):
            assert m.moving_cost(A, A, rate=3.0) == 0.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearMobility().moving_cost(A, B, rate=-1.0)

    def test_nonpositive_speed_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearMobility().travel_time(A, B, speed=0.0)
        with pytest.raises(ConfigurationError):
            ManhattanMobility().travel_time(A, B, speed=-1.0)

    def test_negative_curvature_rejected(self):
        with pytest.raises(ConfigurationError):
            QuadraticMobility(curvature=-0.1)


class TestTrip:
    def test_length_and_duration(self):
        t = Trip(A, B, speed=2.0)
        assert t.length == 5.0
        assert t.duration == 2.5

    def test_position_interpolation(self):
        t = Trip(A, Point(10.0, 0.0), speed=2.0)
        assert t.position_at(0.0) == A
        assert t.position_at(2.5) == Point(5.0, 0.0)
        assert t.position_at(100.0) == Point(10.0, 0.0)  # clamped at arrival

    def test_distance_travelled_clamps(self):
        t = Trip(A, B, speed=1.0)
        assert t.distance_travelled(2.0) == 2.0
        assert t.distance_travelled(99.0) == 5.0

    def test_negative_elapsed_rejected(self):
        t = Trip(A, B, speed=1.0)
        with pytest.raises(ValueError):
            t.position_at(-1.0)
        with pytest.raises(ValueError):
            t.distance_travelled(-1.0)

    def test_invalid_speed_rejected(self):
        with pytest.raises(ConfigurationError):
            Trip(A, B, speed=0.0)
