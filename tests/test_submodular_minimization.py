"""Unit tests for the Fujishige–Wolfe SFM engine against brute force."""

from __future__ import annotations

import numpy as np
import pytest

from repro.submodular import (
    SetFunction,
    concave_of_modular,
    greedy_vertex,
    is_submodular,
    minimize,
    minimize_brute_force,
    modular,
    powerset,
)


def make_ccs_like(n, rng, base=None):
    """A random CCS-style submodular cost: base + concave(sum) + modular."""
    w = rng.uniform(0.1, 3.0, n)
    a = rng.uniform(-2.0, 2.0, n)
    b = float(rng.uniform(0.0, 5.0)) if base is None else base

    def fn(s):
        if not s:
            return 0.0
        return b + sum(w[i] for i in s) ** 0.7 + sum(a[i] for i in s)

    return SetFunction(n, fn)


class TestGreedyVertex:
    def test_vertex_components_sum_to_f_of_ground_set(self):
        rng = np.random.default_rng(0)
        f = make_ccs_like(5, rng)
        v = greedy_vertex(f, np.zeros(5))
        assert v.sum() == pytest.approx(f(range(5)))

    def test_vertex_lies_in_base_polytope(self):
        # For every S: v(S) <= f(S) (normalized), with equality on V.
        rng = np.random.default_rng(1)
        f = make_ccs_like(5, rng)
        w = rng.normal(size=5)
        v = greedy_vertex(f, w)
        f0 = f(frozenset())
        for s in powerset(5):
            assert sum(v[i] for i in s) <= f(s) - f0 + 1e-9

    def test_vertex_minimizes_linear_objective(self):
        # Among many random vertices, the greedy vertex for w minimizes <w,x>.
        rng = np.random.default_rng(2)
        f = make_ccs_like(5, rng)
        w = rng.normal(size=5)
        star = greedy_vertex(f, w)
        for _ in range(30):
            other = greedy_vertex(f, rng.normal(size=5))
            assert float(w @ star) <= float(w @ other) + 1e-9


class TestMinimize:
    def test_empty_ground_set(self):
        f = SetFunction(0, lambda s: 3.0)
        r = minimize(f)
        assert r.minimizer == frozenset()
        assert r.value == 3.0

    def test_modular_minimizer_is_negative_support(self):
        f = modular([1.0, -2.0, 3.0, -0.5])
        r = minimize(f)
        assert r.minimizer == frozenset({1, 3})
        assert r.value == pytest.approx(-2.5)

    def test_all_positive_modular_minimizer_is_empty(self):
        r = minimize(modular([1.0, 2.0]))
        assert r.minimizer == frozenset()
        assert r.value == 0.0

    def test_unnormalized_offset_preserved(self):
        f = SetFunction(2, lambda s: 7.0 - float(len(s)))
        r = minimize(f)
        assert r.value == pytest.approx(5.0)
        assert r.minimizer == frozenset({0, 1})

    @pytest.mark.parametrize("seed", range(12))
    def test_matches_brute_force_on_random_ccs_costs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 9))
        f = make_ccs_like(n, rng)
        assert is_submodular(f)
        r = minimize(f)
        ref = minimize_brute_force(f)
        assert r.value == pytest.approx(ref.value, abs=1e-6)
        assert f(r.minimizer) == pytest.approx(r.value)

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force_on_concave_of_modular(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(2, 8))
        g = concave_of_modular(rng.uniform(0.1, 2.0, n), lambda x: x**0.5)
        f = g.shifted_by_modular(rng.uniform(0.0, 1.0, n))
        r = minimize(f)
        ref = minimize_brute_force(f)
        assert r.value == pytest.approx(ref.value, abs=1e-6)

    def test_norm_point_returned(self):
        rng = np.random.default_rng(3)
        f = make_ccs_like(4, rng)
        r = minimize(f)
        assert r.norm_point is not None
        assert len(r.norm_point) == 4
        assert r.major_cycles >= 1

    def test_value_is_true_evaluation(self):
        # The polish step guarantees value == f(minimizer) exactly.
        rng = np.random.default_rng(4)
        f = make_ccs_like(6, rng)
        r = minimize(f)
        assert f(r.minimizer) == r.value


class TestBruteForce:
    def test_prefers_smaller_set_on_tie(self):
        f = SetFunction(2, lambda s: 0.0)
        assert minimize_brute_force(f).minimizer == frozenset()
