"""Snapshot + compaction tests: bounded recovery for the service journal.

The contract under test (docs/RECOVERY.md):

1. **Format**: a snapshot is one checksummed JSON document pinned to a
   journal seq, written atomically (temp + fsync + rename) — readers
   never see a half snapshot, and ``*.tmp`` leftovers are never selected.
2. **Fast path**: recovery loads the newest valid snapshot and replays
   only the journal suffix; the result is byte-identical (schedule and
   metrics) to a full replay.
3. **Fallback**: a corrupt snapshot is skipped — next older snapshot,
   then full replay.  Loading never repairs.
4. **Compaction**: a journal prefix is truncated only when two retained
   snapshots cover it, so one corrupt snapshot never strands recovery;
   a compacted journal whose snapshots are all bad is a typed
   :class:`~repro.errors.RecoveryError`, not silent data loss.
5. **Torn tails**: recovery counts dropped bytes in an operational
   counter and emits a structured ``journal.torn_tail`` log line.
"""

from __future__ import annotations

import json
import logging

import pytest

from repro.errors import RecoveryError, SnapshotError
from repro.geometry import Point
from repro.service import (
    ChargingService,
    Journal,
    Metrics,
    ServiceConfig,
    SNAPSHOT_SCHEMA,
    generate_requests,
    list_snapshots,
    load_snapshot,
    prune_snapshots,
    snapshot_path,
    write_snapshot,
)
from repro.service.snapshot import _snapshot_checksum
from repro.wpt import Charger

CHARGERS = [
    Charger(charger_id="c0", position=Point(25.0, 25.0)),
    Charger(charger_id="c1", position=Point(75.0, 75.0)),
]
CONFIG = ServiceConfig(epoch=60.0, window=120.0)


@pytest.fixture(scope="module")
def stream():
    return generate_requests(
        30, rate=0.25, deadline_slack=900.0, max_price_factor=1.3, rng=33
    )


def run(tmp_path, reqs, tag, **kw):
    path = tmp_path / f"{tag}.jsonl"
    svc = ChargingService(
        CHARGERS, config=CONFIG, journal_path=path, journal_sync=False, **kw
    )
    for r in reqs:
        svc.submit(r)
    svc.advance(reqs[-1].submitted_at + 300.0)
    svc.drain()
    svc.journal.close()
    return svc, path


def recover(path, **kw):
    return ChargingService.recover(
        path, CHARGERS, config=CONFIG, journal_sync=False, **kw
    )


def corrupt_half(path):
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])


class TestSnapshotFormat:
    def test_write_load_roundtrip(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        state = {"clock": 12.5, "requests": [1, 2, 3]}
        path = write_snapshot(journal, 42, state)
        assert path == snapshot_path(journal, 42)
        assert path.name == "j.jsonl.snap-0000000042"
        assert load_snapshot(path) == (42, state)
        # Atomic publish: no temp sibling survives the write.
        assert not list(tmp_path.glob("*.tmp"))

    def test_list_is_newest_first_and_ignores_tmp(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        for seq in (5, 99, 20):
            write_snapshot(journal, seq, {})
        # A stranded half-written temp file and a stray name never list.
        (tmp_path / "j.jsonl.snap-0000000777.tmp").write_text('{"schema":1,"seq":')
        (tmp_path / "j.jsonl.snap-junk").write_text("{}")
        assert [seq for seq, _p in list_snapshots(journal)] == [99, 20, 5]

    @pytest.mark.parametrize(
        "damage",
        ["missing", "garbage", "truncated", "checksum", "schema", "non_object"],
    )
    def test_load_rejects_every_defect(self, tmp_path, damage):
        journal = tmp_path / "j.jsonl"
        path = write_snapshot(journal, 7, {"x": 1})
        if damage == "missing":
            path.unlink()
        elif damage == "garbage":
            path.write_text("not json at all")
        elif damage == "truncated":
            corrupt_half(path)
        elif damage == "checksum":
            doc = json.loads(path.read_text())
            doc["state"]["x"] = 2  # flip state without recomputing sha
            path.write_text(json.dumps(doc, sort_keys=True))
        elif damage == "schema":
            # Version skew with a *valid* checksum: only the schema gate fires.
            doc = {"schema": SNAPSHOT_SCHEMA + 1, "seq": 7, "state": {"x": 1}}
            doc["sha"] = _snapshot_checksum(doc)
            path.write_text(json.dumps(doc, sort_keys=True))
        else:
            path.write_text("[1, 2, 3]")
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_prune_keeps_newest(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        for seq in range(5):
            write_snapshot(journal, seq, {})
        assert prune_snapshots(journal, keep=2) == 3
        assert [seq for seq, _p in list_snapshots(journal)] == [4, 3]
        with pytest.raises(ValueError):
            prune_snapshots(journal, keep=0)


class TestSnapshotRecovery:
    def test_fast_path_replays_only_the_suffix(self, tmp_path, stream):
        ref, ref_path = run(tmp_path, stream, "ref")
        _snap, snap_path = run(
            tmp_path, stream, "snap", snapshot_every=10, compact=False
        )
        assert list_snapshots(snap_path)
        rec = recover(snap_path, snapshot_every=10, compact=False)
        rec.journal.close()
        counters = rec.observability_snapshot()["counters"]
        assert counters["recovery.snapshot_used"] == 1
        total = len(Journal.read_records(snap_path)[0])
        assert counters["recovery.records_replayed"] < total
        assert rec.final_schedule() == ref.final_schedule()
        assert rec.metrics_snapshot() == ref.metrics_snapshot()

    def test_half_written_tmp_is_never_selected(self, tmp_path, stream):
        _svc, path = run(tmp_path, stream, "t", snapshot_every=10, compact=False)
        newest_seq = list_snapshots(path)[0][0]
        tmp = snapshot_path(path, newest_seq + 10)
        tmp.with_name(tmp.name + ".tmp").write_text('{"schema":1,"seq":')
        rec = recover(path, snapshot_every=10, compact=False)
        rec.journal.close()
        assert rec.final_schedule() == _svc.final_schedule()

    def test_corrupt_newest_falls_back_to_older(self, tmp_path, stream):
        svc, path = run(tmp_path, stream, "fb", snapshot_every=8, compact=False)
        snaps = list_snapshots(path)
        assert len(snaps) >= 2
        corrupt_half(snaps[0][1])
        rec = recover(path, snapshot_every=8, compact=False)
        rec.journal.close()
        counters = rec.observability_snapshot()["counters"]
        assert counters["recovery.snapshot_fallbacks"] >= 1
        assert counters["recovery.snapshot_used"] == 1
        assert rec.final_schedule() == svc.final_schedule()
        assert rec.metrics_snapshot() == svc.metrics_snapshot()

    def test_all_corrupt_falls_back_to_full_replay(self, tmp_path, stream):
        svc, path = run(tmp_path, stream, "all", snapshot_every=8, compact=False)
        for _seq, spath in list_snapshots(path):
            corrupt_half(spath)
        rec = recover(path, snapshot_every=8, compact=False)
        rec.journal.close()
        counters = rec.observability_snapshot()["counters"]
        assert counters["recovery.snapshot_used"] == 0
        assert rec.final_schedule() == svc.final_schedule()
        assert rec.metrics_snapshot() == svc.metrics_snapshot()


class TestCompaction:
    def test_compacted_journal_recovers_byte_identical(self, tmp_path, stream):
        ref, _ref_path = run(tmp_path, stream, "ref")
        _svc, path = run(tmp_path, stream, "c", snapshot_every=10)
        records, torn = Journal.read_records(path)
        assert not torn
        assert records[0]["seq"] > 0  # prefix actually truncated
        rec = recover(path, snapshot_every=10)
        rec.journal.close()
        assert rec.final_schedule() == ref.final_schedule()
        assert rec.metrics_snapshot() == ref.metrics_snapshot()

    def test_compaction_requires_two_retained_snapshots(self, tmp_path, stream):
        # keep=1 would make the sole snapshot a single point of failure,
        # so the journal must never be compacted.
        _svc, path = run(
            tmp_path, stream, "k1", snapshot_every=10, snapshot_keep=1
        )
        records, _torn = Journal.read_records(path)
        assert records[0]["seq"] == 0
        assert len(list_snapshots(path)) == 1

    def test_compacted_with_all_snapshots_bad_is_a_typed_error(
        self, tmp_path, stream
    ):
        _svc, path = run(tmp_path, stream, "dead", snapshot_every=10)
        records, _torn = Journal.read_records(path)
        assert records[0]["seq"] > 0
        for _seq, spath in list_snapshots(path):
            corrupt_half(spath)
        with pytest.raises(RecoveryError):
            recover(path, snapshot_every=10)

    def test_one_corrupt_snapshot_never_costs_the_journal(self, tmp_path, stream):
        # The invariant the keep>=2 gate buys: corrupt the newest snapshot
        # of a *compacted* journal and recovery still succeeds off the
        # older one.
        svc, path = run(tmp_path, stream, "inv", snapshot_every=8)
        snaps = list_snapshots(path)
        assert len(snaps) >= 2
        corrupt_half(snaps[0][1])
        rec = recover(path, snapshot_every=8)
        rec.journal.close()
        assert rec.final_schedule() == svc.final_schedule()
        assert rec.metrics_snapshot() == svc.metrics_snapshot()


class TestTornTail:
    def test_dropped_bytes_counted_and_logged(self, tmp_path, stream, caplog):
        svc, path = run(tmp_path, stream, "torn")
        raw = path.read_bytes()
        cut = len(raw) - 37  # mid-record: a kill -9 during the last append
        path.write_bytes(raw[:cut])
        with caplog.at_level(logging.WARNING, logger="repro.service.journal"):
            rec = recover(path)
        rec.journal.close()
        counters = rec.observability_snapshot()["counters"]
        assert counters["journal.recovered_bytes_dropped"] > 0
        torn_lines = [
            r.getMessage() for r in caplog.records
            if r.getMessage().startswith("journal.torn_tail ")
        ]
        assert len(torn_lines) == 1
        payload = json.loads(torn_lines[0][len("journal.torn_tail "):])
        assert payload["dropped_bytes"] == counters["journal.recovered_bytes_dropped"]
        assert payload["path"].endswith("torn.jsonl")
        assert payload["kept_records"] > 0


class TestOperationalMetrics:
    def test_operational_instruments_stay_out_of_the_contract(self):
        m = Metrics()
        m.counter("deterministic").inc(3)
        m.counter("ops_only", operational=True).inc(7)
        m.gauge("depth", operational=True).set(2)
        assert "ops_only" not in m.snapshot()["counters"]
        assert "depth" not in m.snapshot()["gauges"]
        full = m.snapshot(operational=True)
        assert full["counters"]["ops_only"] == 7
        assert full["counters"]["deterministic"] == 3

    def test_state_restore_roundtrip(self):
        m = Metrics()
        m.counter("c").inc(5)
        m.gauge("g").set(1.5)
        h = m.histogram("h", (0.25, 1.0, 4.0))
        for v in (0.1, 0.5, 2.0, 8.0):
            h.observe(v)
        m.counter("ops", operational=True).inc(9)
        fresh = Metrics()
        fresh.restore(m.state())
        assert fresh.snapshot() == m.snapshot()
