"""Property-based tests (hypothesis) for the discrete-event testbed."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ccsa, comprehensive_cost, noncooperation, random_grouping
from repro.sim import Engine, FieldTrialConfig, NoiseModel, execute_round
from repro.workloads import testbed_instance as make_testbed


class TestEngineProperties:
    @settings(max_examples=30, deadline=None)
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30))
    def test_events_fire_in_nondecreasing_time(self, delays):
        e = Engine()
        fired = []
        for d in delays:
            e.schedule(d, lambda: fired.append(e.now))
        e.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
        assert e.now == max(delays)

    @settings(max_examples=20, deadline=None)
    @given(
        delays=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=2, max_size=10),
        cancel_index=st.integers(min_value=0, max_value=9),
    )
    def test_cancelled_events_never_fire(self, delays, cancel_index):
        cancel_index %= len(delays)
        e = Engine()
        fired = []
        handles = [
            e.schedule(d, lambda k=k: fired.append(k)) for k, d in enumerate(delays)
        ]
        e.cancel(handles[cancel_index])
        e.run()
        assert cancel_index not in fired
        assert len(fired) == len(delays) - 1


class TestRoundProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        world_seed=st.integers(min_value=0, max_value=10_000),
        scheduler=st.sampled_from([ccsa, noncooperation]),
    )
    def test_noiseless_execution_reproduces_planned_cost(self, world_seed, scheduler):
        inst = make_testbed(rng=world_seed)
        sched = scheduler(inst)
        config = FieldTrialConfig(rounds=1, seed=1, noise=NoiseModel.noiseless())
        outcome = execute_round(inst, sched, config, round_index=0)
        assert outcome.total_cost == pytest.approx(
            comprehensive_cost(sched, inst), rel=1e-9
        )

    @settings(max_examples=10, deadline=None)
    @given(
        world_seed=st.integers(min_value=0, max_value=10_000),
        noise_seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_noisy_cost_never_negative_and_sessions_complete(self, world_seed, noise_seed):
        inst = make_testbed(rng=world_seed)
        sched = random_grouping(inst, rng=world_seed)
        config = FieldTrialConfig(rounds=1, seed=noise_seed)
        outcome = execute_round(inst, sched, config, round_index=0)
        assert outcome.n_sessions == sched.n_sessions
        assert all(v > 0 for v in outcome.node_costs.values())
        for rec in outcome.sessions:
            assert rec.end >= rec.start

    @settings(max_examples=10, deadline=None)
    @given(world_seed=st.integers(min_value=0, max_value=10_000))
    def test_billed_total_matches_station_revenue_plus_moving(self, world_seed):
        inst = make_testbed(rng=world_seed)
        sched = ccsa(inst)
        config = FieldTrialConfig(rounds=1, seed=7)
        outcome = execute_round(inst, sched, config, round_index=0)
        session_revenue = sum(rec.billed_price for rec in outcome.sessions)
        # Moving costs are nonnegative, so measured total strictly exceeds
        # the session revenue (someone always walks on this testbed).
        assert outcome.total_cost > session_revenue
        # Each realized bill stays within a sane band of the nominal price
        # (noise sigmas are a few percent).
        for session in sched.sessions:
            nominal = inst.charging_price(session.members, session.charger)
            rec = next(
                r for r in outcome.sessions
                if set(r.member_ids)
                == {inst.devices[i].device_id for i in session.members}
            )
            assert 0.5 * nominal < rec.billed_price < 2.0 * nominal
