"""Tests for the charging-service daemon kernel: lifecycle, admission,
epoch machinery, determinism, and the built-in metrics."""

from __future__ import annotations

import pytest

from repro.core import Device
from repro.errors import ConfigurationError
from repro.geometry import Point
from repro.service import (
    ChargingRequest,
    ChargingService,
    RequestState,
    ServiceClock,
    ServiceConfig,
    earliest_departure,
    generate_requests,
)
from repro.service.admission import (
    REASON_CAPACITY,
    REASON_DEADLINE,
    REASON_DUPLICATE,
    REASON_PRICE,
    REASON_QUEUE_FULL,
)
from repro.wpt import Charger


def make_chargers(capacity=None):
    return [
        Charger(charger_id="c0", position=Point(20.0, 20.0), capacity=capacity),
        Charger(charger_id="c1", position=Point(80.0, 80.0), capacity=capacity),
    ]


def request(rid, x=10.0, y=10.0, t=1.0, demand=20e3, deadline=None, max_price=None):
    return ChargingRequest(
        request_id=rid,
        device=Device(device_id=f"dev-{rid}", position=Point(x, y), demand=demand),
        submitted_at=t,
        deadline=deadline,
        max_price=max_price,
    )


class TestClock:
    def test_monotone(self):
        clock = ServiceClock()
        assert clock.now == 0.0
        clock.advance(10.0)
        clock.advance(10.0)  # same target: idempotent no-op
        assert clock.now == 10.0

    def test_backwards_raises_typed_error_with_both_timestamps(self):
        from repro.errors import ClockError

        clock = ServiceClock()
        clock.advance(10.0)
        with pytest.raises(ClockError) as exc_info:
            clock.advance(5.0)
        err = exc_info.value
        assert (err.target, err.current) == (5.0, 10.0)
        assert "5.0" in str(err) and "10.0" in str(err)
        assert clock.now == 10.0  # the failed advance changed nothing

    def test_within_epsilon_is_a_no_op(self):
        clock = ServiceClock()
        clock.advance(10.0)
        clock.advance(10.0 - 1e-12)  # float-noise regression, not a bug
        assert clock.now == 10.0

    def test_rejects_nonfinite(self):
        clock = ServiceClock()
        with pytest.raises(ConfigurationError):
            clock.advance(float("nan"))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(epoch=0.0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(window=-1.0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(queue_limit=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(max_active=0)

    def test_to_dict_round_trips_through_json(self):
        import json

        cfg = ServiceConfig(epoch=30.0, max_active=7)
        assert json.loads(json.dumps(cfg.to_dict())) == cfg.to_dict()


class TestEarliestDeparture:
    def test_mid_epoch_submission(self):
        # Submitted at 10, epoch 60, window 120: fold at 60, depart at 180.
        assert earliest_departure(10.0, 60.0, 120.0) == 180.0

    def test_submission_on_boundary_waits_for_next_fold(self):
        assert earliest_departure(60.0, 60.0, 120.0) == 240.0

    def test_window_shorter_than_epoch(self):
        # Window 30 < epoch 60: departs one epoch after the fold.
        assert earliest_departure(0.0, 60.0, 30.0) == 120.0


class TestLifecycle:
    def test_happy_path_states(self):
        svc = ChargingService(make_chargers())
        r = request("r1", t=5.0)
        assert svc.submit(r) == RequestState.ADMITTED
        svc.advance(60.0)
        assert svc.request_state("r1") == RequestState.GROUPED
        svc.advance(180.0)  # window 120 after opening at 60
        assert svc.request_state("r1") == RequestState.CHARGING
        svc.advance(1e9)
        assert svc.request_state("r1") == RequestState.DONE
        sessions = svc.final_schedule()
        assert len(sessions) == 1
        assert sessions[0]["members"] == ["dev-r1"]
        assert sessions[0]["departed"] == 180.0

    def test_submit_is_idempotent(self):
        svc = ChargingService(make_chargers())
        r = request("r1")
        first = svc.submit(r)
        again = svc.submit(r)
        assert (first, again) == (RequestState.ADMITTED, RequestState.ADMITTED)
        assert svc.metrics_snapshot()["counters"]["submitted"] == 1

    def test_drain_terminates_everything(self):
        svc = ChargingService(make_chargers())
        for k in range(8):
            svc.submit(request(f"r{k}", t=1.0 + k))
        svc.drain()
        counts = svc.counts()
        assert counts[RequestState.DONE] == 8
        assert sum(counts.values()) == 8

    def test_nearby_devices_pool_into_one_session(self):
        svc = ChargingService(make_chargers())
        for k in range(4):
            svc.submit(request(f"r{k}", x=18.0 + k, y=20.0, t=1.0))
        svc.drain()
        sessions = svc.final_schedule()
        assert len(sessions) == 1
        assert sessions[0]["charger"] == "c0"
        assert len(sessions[0]["members"]) == 4

    def test_session_cost_accounting_matches_price(self):
        svc = ChargingService(make_chargers())
        for k in range(3):
            svc.submit(request(f"r{k}", x=20.0 + k, y=20.0, t=1.0))
        svc.drain()
        (session,) = svc.final_schedule()
        # Sum of realized per-member costs = session price + total moving
        # cost (devices at x = 20, 21, 22 walk 0, 1, 2 m at 0.05/m).
        total = sum(session["costs"].values())
        moving = 0.05 * (0.0 + 1.0 + 2.0)
        assert total == pytest.approx(session["price"] + moving, rel=1e-9)


class TestRejections:
    def test_price_rejection(self):
        svc = ChargingService(make_chargers())
        state = svc.submit(request("r1", max_price=1.0))
        assert state == RequestState.REJECTED
        assert svc.requests["r1"].reason == REASON_PRICE

    def test_deadline_rejection(self):
        # epoch 60, window 120 => earliest departure from t=1 is 180.
        svc = ChargingService(make_chargers())
        state = svc.submit(request("r1", t=1.0, deadline=100.0))
        assert state == RequestState.REJECTED
        assert svc.requests["r1"].reason == REASON_DEADLINE

    def test_queue_full_rejection(self):
        cfg = ServiceConfig(queue_limit=2)
        svc = ChargingService(make_chargers(), config=cfg)
        assert svc.submit(request("r1", t=1.0)) == RequestState.ADMITTED
        assert svc.submit(request("r2", t=2.0)) == RequestState.ADMITTED
        assert svc.submit(request("r3", t=3.0)) == RequestState.REJECTED
        assert svc.requests["r3"].reason == REASON_QUEUE_FULL

    def test_capacity_rejection(self):
        cfg = ServiceConfig(max_active=1)
        svc = ChargingService(make_chargers(), config=cfg)
        assert svc.submit(request("r1", t=1.0)) == RequestState.ADMITTED
        assert svc.submit(request("r2", t=2.0)) == RequestState.REJECTED
        assert svc.requests["r2"].reason == REASON_CAPACITY

    def test_duplicate_device_rejection(self):
        svc = ChargingService(make_chargers())
        r1 = request("r1", t=1.0)
        r2 = ChargingRequest(
            request_id="r2", device=r1.device, submitted_at=2.0
        )
        assert svc.submit(r1) == RequestState.ADMITTED
        assert svc.submit(r2) == RequestState.REJECTED
        assert svc.requests["r2"].reason == REASON_DUPLICATE

    def test_same_device_welcome_back_after_completion(self):
        svc = ChargingService(make_chargers())
        r1 = request("r1", t=1.0)
        svc.submit(r1)
        svc.advance(1e9)  # r1 runs to completion
        assert svc.request_state("r1") == RequestState.DONE
        r2 = ChargingRequest(
            request_id="r2", device=r1.device, submitted_at=svc.clock.now + 1.0
        )
        assert svc.submit(r2) == RequestState.ADMITTED

    def test_rejection_reason_counters(self):
        svc = ChargingService(make_chargers())
        svc.submit(request("r1", max_price=1.0))
        svc.submit(request("r2", t=1.0, deadline=50.0))
        counters = svc.metrics_snapshot()["counters"]
        assert counters["rejected"] == 2
        assert counters["rejected.price"] == 1
        assert counters["rejected.deadline"] == 1


class TestExpiry:
    def test_deadline_exactly_at_departure_is_met(self):
        # Submitted at 1, epoch 60, window 120: folds at 60, departs at
        # 180.  Deadline 180 is met — departures run before expirations.
        svc = ChargingService(make_chargers())
        state = svc.submit(request("r1", t=1.0, deadline=180.0))
        assert state == RequestState.ADMITTED
        svc.advance(1e6)
        assert svc.request_state("r1") == RequestState.DONE

    def test_plan_expiry_when_coalition_reopens_past_deadline(self):
        # Admission guarantees the *solo* path meets the deadline, but
        # replanner churn can land a device in a coalition whose window
        # restarted.  Simulate that: the request folds at 240 (would
        # depart 360, exactly its deadline), then its coalition re-opens
        # at 300 — departure slips to 420, so the kernel must expire the
        # request at the last boundary before it becomes unservable.
        svc = ChargingService(make_chargers())
        assert svc.submit(request("r3", t=181.0, deadline=360.0)) == RequestState.ADMITTED
        svc.advance(240.0)
        assert svc.request_state("r3") == RequestState.GROUPED
        (cid,) = svc.planner.live_cids()
        svc._opened_at[cid] = 300.0
        svc.advance(1e6)
        assert svc.request_state("r3") == RequestState.EXPIRED
        assert svc.requests["r3"].reason == "plan"
        assert svc.metrics_snapshot()["counters"]["expired.plan"] == 1


class TestDeterminism:
    def test_identical_runs_byte_identical(self, tmp_path):
        chargers = make_chargers()
        reqs = generate_requests(
            40, rate=0.25, deadline_slack=600.0, max_price_factor=1.3, rng=13
        )
        outputs = []
        for tag in ("a", "b"):
            svc = ChargingService(
                chargers, journal_path=tmp_path / f"{tag}.jsonl"
            )
            for r in reqs:
                svc.submit(r)
            svc.drain()
            svc.journal.close()
            outputs.append(
                (
                    (tmp_path / f"{tag}.jsonl").read_bytes(),
                    svc.final_schedule(),
                    svc.metrics_snapshot(),
                )
            )
        assert outputs[0] == outputs[1]

    def test_advance_granularity_does_not_matter(self):
        chargers = make_chargers()
        reqs = generate_requests(20, rate=0.25, rng=5)
        svc_coarse = ChargingService(chargers)
        for r in reqs:
            svc_coarse.submit(r)
        svc_coarse.drain()

        svc_fine = ChargingService(chargers)
        k = 0
        t = 0.0
        while k < len(reqs):
            if reqs[k].submitted_at <= t:
                svc_fine.submit(reqs[k])
                k += 1
            else:
                t += 7.0
                svc_fine.advance(min(t, reqs[k].submitted_at))
        svc_fine.drain()
        assert svc_fine.final_schedule() == svc_coarse.final_schedule()


class TestMetrics:
    def test_snapshot_shape(self):
        svc = ChargingService(make_chargers())
        snap = svc.metrics_snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["counters"]["submitted"] == 0
        assert "admission_latency" in snap["histograms"]
        buckets = snap["histograms"]["admission_latency"]["buckets"]
        assert "inf" in buckets

    def test_gauges_track_load(self):
        svc = ChargingService(make_chargers())
        svc.submit(request("r1", t=1.0))
        snap = svc.metrics_snapshot()
        assert snap["gauges"]["queue_depth"] == 1
        svc.advance(60.0)
        snap = svc.metrics_snapshot()
        assert snap["gauges"]["queue_depth"] == 0
        assert snap["gauges"]["active_devices"] == 1

    def test_histogram_quantiles(self):
        from repro.service.metrics import Histogram

        h = Histogram((1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.7, 3.0, 9.0):
            h.observe(v)
        assert h.quantile(0.5) == 2.0  # upper edge of the bucket holding p50
        assert h.quantile(0.99) == float("inf")
