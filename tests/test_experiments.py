"""Tests for the experiment harness: rendering, sweeps, figures, tables."""

from __future__ import annotations

import math

import pytest

from repro.experiments import (
    EXPERIMENTS,
    SeriesResult,
    TableResult,
    fig5_cost_vs_devices,
    fig7_cost_vs_base_price,
    fig9_runtime,
    fig10_convergence,
    fig11_sharing_fairness,
    fig12_ablation_tariff,
    render_series,
    render_table,
    run_all,
    run_experiment,
    sweep_costs,
    table1_parameters,
    table2_optimality,
    table3_field,
)
from repro.workloads import SMALL_SCALE_SPEC


class TestRendering:
    def test_series_add_and_render(self):
        s = SeriesResult("f", "A title", "x", [1, 2, 3])
        s.add("algo", [10.0, 20.0, 30.0])
        text = render_series(s)
        assert "A title" in text and "algo" in text and "20.00" in text

    def test_series_length_mismatch_rejected(self):
        s = SeriesResult("f", "t", "x", [1, 2])
        with pytest.raises(ValueError):
            s.add("a", [1.0])

    def test_table_add_and_render(self):
        t = TableResult("t", "Tbl", ["a", "b"])
        t.add_row(1, 2.34567)
        text = render_table(t)
        assert "Tbl" in text and "2.346" in text

    def test_table_row_width_checked(self):
        t = TableResult("t", "Tbl", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)


class TestSweep:
    def test_sweep_costs_shape_and_pairing(self):
        res = sweep_costs(
            "s", "t", SMALL_SCALE_SPEC, "n_devices", [4, 6], trials=2, seed=1
        )
        assert set(res.series) == {"NCA", "CCSA", "CCSGA"}
        assert all(len(v) == 2 for v in res.series.values())
        # Paired instances: cooperative algorithms never above NCA on average.
        for k in range(2):
            assert res.series["CCSA"][k] <= res.series["NCA"][k] + 1e-9
            assert res.series["CCSGA"][k] <= res.series["NCA"][k] + 1e-9

    def test_sweep_deterministic(self):
        a = sweep_costs("s", "t", SMALL_SCALE_SPEC, "n_devices", [5], trials=2, seed=3)
        b = sweep_costs("s", "t", SMALL_SCALE_SPEC, "n_devices", [5], trials=2, seed=3)
        assert a.series == b.series


class TestFigures:
    def test_fig5_costs_increase_with_n(self):
        res = fig5_cost_vs_devices(values=(6, 12), trials=2, seed=1)
        for label in ("NCA", "CCSA", "CCSGA"):
            assert res.series[label][1] > res.series[label][0]

    def test_fig7_gap_widens_with_base_price(self):
        res = fig7_cost_vs_base_price(values=(0.0, 60.0), trials=2, seed=1)
        gap_low = res.series["NCA"][0] - res.series["CCSA"][0]
        gap_high = res.series["NCA"][1] - res.series["CCSA"][1]
        assert gap_high > gap_low

    def test_fig9_runtime_ccsga_faster_than_ccsa(self):
        res = fig9_runtime(values=(20,), trials=1, seed=1, include_optimal_upto=0)
        assert res.series["CCSGA"][0] < res.series["CCSA"][0]
        assert math.isnan(res.series["OPT"][0])

    def test_fig10_certifies_equilibria(self):
        res = fig10_convergence(values=(8, 12), trials=1, seed=1)
        assert all(v >= 0 for v in res.series["switches"])
        assert all(v >= 1 for v in res.series["sweeps"])

    def test_fig11_proportional_fairer_than_egalitarian(self):
        res = fig11_sharing_fairness(trials=2, seed=1)
        # x index 1 is the per-joule price dispersion.
        assert res.series["proportional"][1] < res.series["egalitarian"][1]

    def test_fig12_savings_grow_with_concavity(self):
        res = fig12_ablation_tariff(exponents=(0.6, 1.0), trials=2, seed=1)
        savings = res.series["CCSA saving %"]
        assert savings[0] > savings[1] > 0


class TestTables:
    def test_table1_lists_parameters(self):
        t = table1_parameters()
        assert len(t.rows) >= 10

    def test_table2_reproduces_headline_shape(self):
        stats = table2_optimality(device_counts=(6, 8), trials=3, seed=2)
        # Abstract: ~7.3% above OPT, ~27.3% below NCA.  Allow wide bands but
        # require the ordering OPT <= CCSA <= NCA to hold on average.
        assert 0.0 <= stats.avg_gap_vs_optimal_pct < 20.0
        assert 10.0 < stats.avg_saving_vs_nca_pct < 45.0

    def test_table3_reproduces_field_shape(self):
        stats = table3_field(rounds=3, seed=3)
        assert stats.ccsa_mean_cost < stats.nca_mean_cost
        assert 25.0 < stats.avg_improvement_pct < 60.0


class TestRunner:
    def test_every_registered_experiment_runs(self):
        # Smoke-run the cheap ones; heavy ids covered by their benchmarks.
        for eid in ("table1",):
            out = run_experiment(eid, trials=1)
            assert isinstance(out, str) and out

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError, match="available"):
            run_experiment("fig99")

    def test_run_all_with_subset(self):
        out = run_all(trials=1, only=["table1"])
        assert set(out) == {"table1"}

    def test_registry_covers_every_table_and_figure(self):
        expected = {"table1", "table2", "table3"} | {f"fig{i}" for i in range(5, 13)}
        assert set(EXPERIMENTS) == expected
