"""Unit tests for the Dinkelbach minimum-density search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.submodular import (
    SetFunction,
    densest_subset,
    minimize_brute_force,
    powerset,
)


def cost_function(n, rng, base=3.0):
    w = rng.uniform(0.1, 3.0, n)
    a = rng.uniform(0.1, 2.0, n)

    def fn(s):
        if not s:
            return 0.0
        return base + sum(w[i] for i in s) ** 0.8 + sum(a[i] for i in s)

    return SetFunction(n, fn)


def brute_density(f, max_size=None):
    best = None
    for s in powerset(f.n):
        if not s or (max_size is not None and len(s) > max_size):
            continue
        d = f(s) / len(s)
        if best is None or d < best:
            best = d
    return best


class TestDensestSubset:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_brute_force_unconstrained(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 9))
        f = cost_function(n, rng)
        res = densest_subset(f)
        assert res.density == pytest.approx(brute_density(f), abs=1e-7)
        assert res.subset
        assert f(res.subset) / len(res.subset) == pytest.approx(res.density)

    def test_singleton_ground_set(self):
        f = SetFunction(1, lambda s: 4.0 if s else 0.0)
        res = densest_subset(f)
        assert res.subset == frozenset({0})
        assert res.density == 4.0

    def test_base_fee_encourages_large_sets(self):
        # Huge base fee, tiny marginals: the densest set is everything.
        n = 6
        f = SetFunction(n, lambda s: (100.0 + 0.1 * len(s)) if s else 0.0)
        res = densest_subset(f)
        assert res.subset == frozenset(range(n))

    def test_no_base_fee_picks_cheapest_singleton(self):
        a = [3.0, 1.0, 2.0]
        f = SetFunction(3, lambda s: sum(a[i] for i in s))
        res = densest_subset(f)
        assert res.subset == frozenset({1})
        assert res.density == pytest.approx(1.0)

    @pytest.mark.parametrize("cap", [1, 2, 3])
    def test_capacity_respected(self, cap):
        rng = np.random.default_rng(42)
        f = cost_function(6, rng, base=50.0)  # base pushes toward big sets
        res = densest_subset(f, max_size=cap)
        assert 1 <= len(res.subset) <= cap

    def test_capacity_one_equals_best_singleton(self):
        rng = np.random.default_rng(7)
        f = cost_function(5, rng)
        res = densest_subset(f, max_size=1)
        best_singleton = min(f({i}) for i in range(5))
        assert res.density == pytest.approx(best_singleton)

    def test_few_sfm_calls(self):
        rng = np.random.default_rng(3)
        f = cost_function(8, rng)
        res = densest_subset(f)
        assert res.sfm_calls <= 10  # Dinkelbach converges in a handful of rounds

    def test_empty_ground_set_rejected(self):
        with pytest.raises(ValueError):
            densest_subset(SetFunction(0, lambda s: 0.0))

    def test_unnormalized_function_rejected(self):
        f = SetFunction(2, lambda s: 1.0)  # f({}) != 0
        with pytest.raises(ValueError):
            densest_subset(f)

    def test_bad_max_size_rejected(self):
        f = SetFunction(2, lambda s: float(len(s)))
        with pytest.raises(ValueError):
            densest_subset(f, max_size=0)

    def test_injectable_sfm_backend(self):
        rng = np.random.default_rng(5)
        f = cost_function(5, rng)
        res = densest_subset(f, sfm=minimize_brute_force)
        assert res.density == pytest.approx(brute_density(f), abs=1e-9)
