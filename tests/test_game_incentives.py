"""Tests for the demand-misreporting incentive analysis."""

from __future__ import annotations

from typing import Dict, Sequence

import pytest

from repro.core import EgalitarianSharing, ProportionalSharing, ccsa
from repro.game import (
    IncentiveProfile,
    incentive_profile,
    misreport_gain,
)
from repro.workloads import quick_instance


@pytest.fixture
def inst():
    return quick_instance(
        n_devices=8, n_chargers=3, seed=44, capacity=5, demand_model="lognormal"
    )


class WhalePaysScheme:
    """Deliberately exploitable mock: the member with the largest reported
    demand pays the entire session bill.  The heaviest device profits by
    under-reporting below the runner-up.  Exists to prove the detector can
    fire; no sane operator would use it.
    """

    name = "whale-mock"

    def shares(self, instance, members: Sequence[int], charger: int) -> Dict[int, float]:
        price = instance.charging_price(members, charger)
        whale = max(members, key=lambda i: (instance.devices[i].demand, i))
        return {i: (price if i == whale else 0.0) for i in members}


class TestMisreportGain:
    def test_truth_is_baseline(self, inst):
        out = misreport_gain(inst, device=0, factors=(1.0,))
        assert out.best_factor == 1.0
        assert out.gain == 0.0
        assert not out.profitable

    def test_proportional_sharing_robust_on_standard_workloads(self, inst):
        # The finding: proportional sharing ties your bill to your report at
        # a uniform per-joule rate no worse than any private top-up, so no
        # tested misreport beats truth-telling.
        prof = incentive_profile(inst, scheme=ProportionalSharing())
        assert prof.manipulable_fraction == 0.0
        assert prof.mean_gain_pct == 0.0

    def test_egalitarian_sharing_at_most_mildly_manipulable(self, inst):
        # Egalitarian sharing admits small *schedule-manipulation* gains
        # (a changed report can regroup you more favourably), but the
        # private top-up fee keeps them small.
        prof = incentive_profile(inst, scheme=EgalitarianSharing())
        assert prof.mean_gain_pct < 5.0
        for o in prof.outcomes:
            assert o.gain <= 0.2 * o.truthful_cost

    def test_detector_fires_on_exploitable_scheme(self, inst):
        # Under the whale mock the heaviest member pays everything; it
        # profits by under-reporting below the runner-up.
        heavy = max(
            range(inst.n_devices), key=lambda i: inst.devices[i].demand
        )
        out = misreport_gain(
            inst, device=heavy, scheme=WhalePaysScheme(), scheduler=ccsa
        )
        assert out.profitable
        assert out.best_factor < 1.0

    def test_outcome_invariants(self, inst):
        out = misreport_gain(inst, device=1)
        assert out.best_cost <= out.truthful_cost
        assert out.gain == pytest.approx(
            max(0.0, out.truthful_cost - out.best_cost)
        )

    def test_invalid_factors_rejected(self, inst):
        with pytest.raises(ValueError):
            misreport_gain(inst, device=0, factors=(0.0, 1.0))
        with pytest.raises(ValueError):
            misreport_gain(inst, device=0, factors=(-0.5,))

    def test_deterministic(self, inst):
        a = misreport_gain(inst, device=2)
        b = misreport_gain(inst, device=2)
        assert (a.best_cost, a.best_factor) == (b.best_cost, b.best_factor)


class TestIncentiveProfile:
    def test_covers_every_device(self, inst):
        prof = incentive_profile(inst, factors=(0.5, 1.5))
        assert len(prof.outcomes) == inst.n_devices
        assert {o.device for o in prof.outcomes} == set(range(inst.n_devices))

    def test_aggregates_consistent(self, inst):
        prof = incentive_profile(inst, scheme=WhalePaysScheme(), scheduler=ccsa)
        manual = sum(o.profitable for o in prof.outcomes) / len(prof.outcomes)
        assert prof.manipulable_fraction == pytest.approx(manual)
        if prof.manipulable_fraction > 0:
            assert prof.mean_gain_pct > 0
