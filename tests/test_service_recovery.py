"""Crash-recovery tests: the journal is the daemon's flight recorder.

The contract under test (docs/SERVICE.md): killing the daemon at *any*
byte of the journal and recovering must yield a service whose journal,
metrics snapshot, and session schedule are byte-identical to an
uninterrupted run's — after the (idempotent) re-feed of the same input
stream.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ServiceError
from repro.geometry import Point
from repro.service import (
    ChargingService,
    Journal,
    ServiceConfig,
    generate_requests,
    record_checksum,
)
from repro.wpt import Charger

CHARGERS = [
    Charger(charger_id="c0", position=Point(25.0, 25.0)),
    Charger(charger_id="c1", position=Point(75.0, 75.0)),
]
CONFIG = ServiceConfig(epoch=60.0, window=120.0)


def run_uninterrupted(tmp_path, reqs, tag="full"):
    svc = ChargingService(CHARGERS, config=CONFIG, journal_path=tmp_path / f"{tag}.jsonl")
    for r in reqs:
        svc.submit(r)
    svc.advance(reqs[-1].submitted_at + 300.0)
    svc.drain()
    svc.journal.close()
    return svc, (tmp_path / f"{tag}.jsonl").read_bytes()


@pytest.fixture(scope="module")
def stream():
    return generate_requests(
        30, rate=0.25, deadline_slack=900.0, max_price_factor=1.3, rng=21
    )


class TestJournalFormat:
    def test_records_are_checksummed_and_dense(self, tmp_path, stream):
        _, raw = run_uninterrupted(tmp_path, stream)
        records, torn = Journal.read_records(tmp_path / "full.jsonl")
        assert not torn
        assert [r["seq"] for r in records] == list(range(len(records)))
        for r in records:
            assert r["sha"] == record_checksum(r["seq"], r["t"], r["event"], r["data"])
        assert records[0]["event"] == "open"
        assert records[-1]["event"] == "complete"

    def test_missing_file_reads_empty(self, tmp_path):
        records, torn = Journal.read_records(tmp_path / "nope.jsonl")
        assert (records, torn) == ([], False)

    def test_corrupt_checksum_truncates_prefix(self, tmp_path, stream):
        _, raw = run_uninterrupted(tmp_path, stream, tag="c")
        lines = raw.decode().splitlines(keepends=True)
        doc = json.loads(lines[4])
        doc["sha"] = "0" * 16
        lines[4] = json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"
        (tmp_path / "c.jsonl").write_text("".join(lines))
        records, torn = Journal.read_records(tmp_path / "c.jsonl")
        assert torn
        assert len(records) == 4

    def test_closed_journal_refuses_appends(self, tmp_path):
        from repro.errors import JournalError

        j = Journal(tmp_path / "j.jsonl")
        j.append("open", 0.0, {})
        j.close()
        with pytest.raises(JournalError):
            j.append("submit", 1.0, {})


class TestRecovery:
    def test_recover_from_complete_journal(self, tmp_path, stream):
        svc, raw = run_uninterrupted(tmp_path, stream)
        rec = ChargingService.recover(tmp_path / "full.jsonl", CHARGERS, config=CONFIG)
        rec.journal.close()
        assert rec.final_schedule() == svc.final_schedule()
        assert rec.metrics_snapshot() == svc.metrics_snapshot()
        assert (tmp_path / "full.jsonl").read_bytes() == raw

    @pytest.mark.parametrize("where", ["early", "mid", "torn"])
    def test_truncated_journal_recovers_byte_identical(self, tmp_path, stream, where):
        # Three distinct kill points: after the first few records
        # ("early"), halfway through ("mid"), and mid-record — a torn
        # final line, as left by kill -9 during a write ("torn").
        svc, raw = run_uninterrupted(tmp_path, stream, tag=f"ref-{where}")
        lines = raw.decode().splitlines(keepends=True)
        if where == "early":
            damaged = "".join(lines[:3])
        elif where == "mid":
            damaged = "".join(lines[: len(lines) // 2])
        else:
            damaged = "".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2]
        path = tmp_path / f"crash-{where}.jsonl"
        path.write_text(damaged)

        rec = ChargingService.recover(path, CHARGERS, config=CONFIG)
        # Re-feed the full original stream: already-journaled submissions
        # are idempotent no-ops, the tail is processed fresh.
        for r in stream:
            rec.submit(r)
        rec.advance(stream[-1].submitted_at + 300.0)
        rec.drain()
        rec.journal.close()

        assert rec.final_schedule() == svc.final_schedule()
        assert rec.metrics_snapshot() == svc.metrics_snapshot()
        assert path.read_bytes() == raw

    def test_recovery_replays_advance_records(self, tmp_path):
        # Explicit clock advances trigger folds/departures; they must be
        # journaled inputs, or a recovered daemon would stall at the last
        # submission time.
        reqs = generate_requests(5, rate=0.5, rng=3)
        svc = ChargingService(CHARGERS, config=CONFIG, journal_path=tmp_path / "a.jsonl")
        for r in reqs:
            svc.submit(r)
        svc.advance(reqs[-1].submitted_at + 500.0)  # departs + completes
        svc.journal.close()
        assert len(svc.final_schedule()) > 0

        rec = ChargingService.recover(tmp_path / "a.jsonl", CHARGERS, config=CONFIG)
        rec.journal.close()
        assert rec.final_schedule() == svc.final_schedule()
        assert rec.clock.now == svc.clock.now

    def test_recover_rejects_mismatched_configuration(self, tmp_path, stream):
        run_uninterrupted(tmp_path, stream, tag="cfg")
        other = ServiceConfig(epoch=30.0, window=120.0)
        with pytest.raises(ServiceError):
            ChargingService.recover(tmp_path / "cfg.jsonl", CHARGERS, config=other)

    def test_recovered_daemon_keeps_serving(self, tmp_path, stream):
        svc, raw = run_uninterrupted(tmp_path, stream, tag="live")
        rec = ChargingService.recover(tmp_path / "live.jsonl", CHARGERS, config=CONFIG)
        extra = generate_requests(5, rate=0.5, rng=99)
        t0 = rec.clock.now
        for k, r in enumerate(extra):
            rec.submit(
                type(r)(
                    request_id=f"extra-{k}",
                    device=r.device,
                    submitted_at=t0 + 1.0 + r.submitted_at,
                )
            )
        rec.drain()
        rec.journal.close()
        counts = rec.counts()
        assert sum(counts.values()) == len(stream) + len(extra)
        assert counts["admitted"] == counts["grouped"] == counts["charging"] == 0
        assert len(rec.final_schedule()) > len(svc.final_schedule())
