"""Smoke tests for the ``ccs-serve`` command-line interface."""

from __future__ import annotations

import json

from repro.cli import serve_main
from repro.service import read_trace, write_trace
from repro.service.loadgen import generate_requests


class TestServeCli:
    def test_loadgen_run(self, capsys):
        assert serve_main(["--n", "20", "--rate", "0.5", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "requests: 20" in out
        assert "0 full solves" in out

    def test_journal_metrics_and_recovery_check(self, tmp_path, capsys):
        journal = tmp_path / "service.jsonl"
        metrics = tmp_path / "metrics.json"
        rc = serve_main(
            [
                "--n", "25", "--rate", "0.4", "--seed", "7",
                "--duration", "600",
                "--journal", str(journal),
                "--metrics-json", str(metrics),
                "--check-recovery",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "recovery check OK" in captured.err
        snap = json.loads(metrics.read_text())
        assert snap["counters"]["submitted"] == 25
        assert journal.exists()

    def test_trace_round_trip(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        requests = generate_requests(10, rate=0.5, rng=11)
        write_trace(trace, requests)
        assert [r.request_id for r in read_trace(trace)] == [
            r.request_id for r in requests
        ]
        assert serve_main(["--trace", str(trace)]) == 0
        assert "requests: 10" in capsys.readouterr().out

    def test_burst_and_diurnal_profiles(self, capsys):
        for profile in ("burst", "diurnal"):
            assert serve_main(
                ["--loadgen", profile, "--n", "10", "--rate", "0.5", "--seed", "2"]
            ) == 0
        assert "requests: 10" in capsys.readouterr().out

    def test_check_recovery_requires_journal(self, capsys):
        assert serve_main(["--check-recovery"]) == 2
        assert "--check-recovery requires --journal" in capsys.readouterr().err

    def test_entry_point_registered(self):
        import tomllib

        with open("pyproject.toml", "rb") as fh:
            cfg = tomllib.load(fh)
        assert cfg["project"]["scripts"]["ccs-serve"] == "repro.cli:serve_main"


class TestServeRecoveryCli:
    """``--snapshot-every`` / ``--supervise`` / ``--recover-only`` and the
    one-line structured error contract (exit 3, JSON on stderr)."""

    def _run(self, journal, extra=()):
        return serve_main(
            [
                "--n", "25", "--rate", "0.4", "--seed", "7",
                "--journal", str(journal),
                "--snapshot-every", "10",
                *extra,
            ]
        )

    def test_snapshot_run_then_recover_only(self, tmp_path, capsys):
        journal = tmp_path / "svc.jsonl"
        assert self._run(journal, ["--check-recovery"]) == 0
        assert "recovery check OK" in capsys.readouterr().err
        assert list(tmp_path.glob("svc.jsonl.snap-*"))
        assert serve_main(["--journal", str(journal), "--recover-only"]) == 0
        assert "recovered:" in capsys.readouterr().out

    def test_recover_only_sharded(self, tmp_path, capsys):
        journal = tmp_path / "svc"
        rc = serve_main(
            [
                "--n", "25", "--rate", "0.4", "--seed", "7",
                "--shards", "4", "--journal", str(journal),
                "--snapshot-every", "10",
            ]
        )
        assert rc == 0
        capsys.readouterr()
        rc = serve_main(
            ["--shards", "4", "--journal", str(journal), "--recover-only"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "recovered:" in out

    def test_supervised_chaos_run_checks_out(self, tmp_path, capsys):
        journal = tmp_path / "svc"
        rc = serve_main(
            [
                "--n", "30", "--rate", "0.4", "--seed", "7",
                "--shards", "4", "--journal", str(journal),
                "--snapshot-every", "15",
                "--fault-plan", "seed:3", "--supervise",
                "--check-recovery",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "supervisor:" in captured.out
        assert "recovery check OK" in captured.err

    def test_corrupt_manifest_is_a_structured_error(self, tmp_path, capsys):
        journal = tmp_path / "svc"
        journal.mkdir()
        (journal / "manifest.json").write_text("{oops")
        rc = serve_main(
            ["--shards", "4", "--journal", str(journal), "--recover-only"]
        )
        err = capsys.readouterr().err.strip()
        assert rc == 3
        doc = json.loads(err.splitlines()[-1])
        assert doc["error"] == "RecoveryError"
        assert "manifest" in doc["message"]

    def test_unrecoverable_journal_is_a_structured_error(self, tmp_path, capsys):
        journal = tmp_path / "svc.jsonl"
        assert self._run(journal) == 0
        capsys.readouterr()
        # Compaction truncated the journal prefix; garbling every
        # snapshot leaves nothing to recover from.
        snaps = list(tmp_path.glob("svc.jsonl.snap-*"))
        assert len(snaps) >= 2
        for snap in snaps:
            snap.write_bytes(snap.read_bytes()[:20])
        rc = serve_main(["--journal", str(journal), "--recover-only"])
        err = capsys.readouterr().err.strip()
        assert rc == 3
        doc = json.loads(err.splitlines()[-1])
        assert doc["error"] == "RecoveryError"

    def test_flag_validation(self, capsys):
        assert serve_main(["--supervise"]) == 2
        assert "--supervise requires --shards > 1" in capsys.readouterr().err
        assert serve_main(["--recover-only"]) == 2
        assert "--recover-only requires --journal" in capsys.readouterr().err
        assert serve_main(["--snapshot-every", "0"]) == 2
        assert "--snapshot-every must be >= 1" in capsys.readouterr().err
        assert serve_main(["--snapshot-keep", "0"]) == 2
        assert "--snapshot-keep must be >= 1" in capsys.readouterr().err
