"""Smoke tests for the ``ccs-serve`` command-line interface."""

from __future__ import annotations

import json

from repro.cli import serve_main
from repro.service import read_trace, write_trace
from repro.service.loadgen import generate_requests


class TestServeCli:
    def test_loadgen_run(self, capsys):
        assert serve_main(["--n", "20", "--rate", "0.5", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "requests: 20" in out
        assert "0 full solves" in out

    def test_journal_metrics_and_recovery_check(self, tmp_path, capsys):
        journal = tmp_path / "service.jsonl"
        metrics = tmp_path / "metrics.json"
        rc = serve_main(
            [
                "--n", "25", "--rate", "0.4", "--seed", "7",
                "--duration", "600",
                "--journal", str(journal),
                "--metrics-json", str(metrics),
                "--check-recovery",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "recovery check OK" in captured.err
        snap = json.loads(metrics.read_text())
        assert snap["counters"]["submitted"] == 25
        assert journal.exists()

    def test_trace_round_trip(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        requests = generate_requests(10, rate=0.5, rng=11)
        write_trace(trace, requests)
        assert [r.request_id for r in read_trace(trace)] == [
            r.request_id for r in requests
        ]
        assert serve_main(["--trace", str(trace)]) == 0
        assert "requests: 10" in capsys.readouterr().out

    def test_burst_and_diurnal_profiles(self, capsys):
        for profile in ("burst", "diurnal"):
            assert serve_main(
                ["--loadgen", profile, "--n", "10", "--rate", "0.5", "--seed", "2"]
            ) == 0
        assert "requests: 10" in capsys.readouterr().out

    def test_check_recovery_requires_journal(self, capsys):
        assert serve_main(["--check-recovery"]) == 2
        assert "--check-recovery requires --journal" in capsys.readouterr().err

    def test_entry_point_registered(self):
        import tomllib

        with open("pyproject.toml", "rb") as fh:
            cfg = tomllib.load(fh)
        assert cfg["project"]["scripts"]["ccs-serve"] == "repro.cli:serve_main"
