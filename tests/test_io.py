"""Tests for JSON serialization of instances and schedules."""

from __future__ import annotations

import json

import pytest

from repro.core import ccsa, comprehensive_cost, validate_schedule
from repro.errors import ConfigurationError
from repro.io import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    load_schedule,
    save_instance,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.mobility import ManhattanMobility, QuadraticMobility
from repro.workloads import quick_instance, testbed_instance as make_testbed
from repro.wpt import PiecewiseConcaveTariff


class TestInstanceRoundTrip:
    def test_round_trip_preserves_costs(self, random_instance):
        data = instance_to_dict(random_instance)
        restored = instance_from_dict(data)
        assert restored.n_devices == random_instance.n_devices
        assert restored.n_chargers == random_instance.n_chargers
        for i in range(restored.n_devices):
            for j in range(restored.n_chargers):
                assert restored.moving_cost(i, j) == pytest.approx(
                    random_instance.moving_cost(i, j)
                )
        group = list(range(restored.n_devices))
        assert restored.group_cost(group, 0) == pytest.approx(
            random_instance.group_cost(group, 0)
        )

    def test_round_trip_is_json_compatible(self, random_instance):
        text = json.dumps(instance_to_dict(random_instance))
        restored = instance_from_dict(json.loads(text))
        assert restored.describe() == random_instance.describe()

    def test_testbed_round_trip(self):
        inst = make_testbed(rng=5)
        restored = instance_from_dict(instance_to_dict(inst))
        assert [c.charger_id for c in restored.chargers] == [
            c.charger_id for c in inst.chargers
        ]
        assert restored.field_area.width == inst.field_area.width

    def test_mobility_variants_round_trip(self):
        for mobility in (QuadraticMobility(curvature=0.02), ManhattanMobility()):
            inst = quick_instance(4, 2, seed=1)
            inst2 = type(inst)(
                devices=list(inst.devices),
                chargers=list(inst.chargers),
                mobility=mobility,
            )
            restored = instance_from_dict(instance_to_dict(inst2))
            assert type(restored.mobility) is type(mobility)
            assert restored.moving_cost(0, 0) == pytest.approx(inst2.moving_cost(0, 0))

    def test_piecewise_tariff_round_trip(self):
        inst = quick_instance(3, 1, seed=2)
        tariff = PiecewiseConcaveTariff(
            base=4.0, breakpoints=[100.0], marginal_prices=[0.5, 0.1]
        )
        charger = type(inst.chargers[0])(
            charger_id="pw", position=inst.chargers[0].position, tariff=tariff
        )
        inst2 = type(inst)(devices=list(inst.devices), chargers=[charger])
        restored = instance_from_dict(instance_to_dict(inst2))
        assert restored.charging_price([0, 1, 2], 0) == pytest.approx(
            inst2.charging_price([0, 1, 2], 0)
        )

    def test_wrong_format_rejected(self, random_instance):
        data = instance_to_dict(random_instance)
        data["format"] = "something-else"
        with pytest.raises(ConfigurationError, match="expected"):
            instance_from_dict(data)

    def test_wrong_version_rejected(self, random_instance):
        data = instance_to_dict(random_instance)
        data["version"] = 99
        with pytest.raises(ConfigurationError, match="version"):
            instance_from_dict(data)

    def test_unknown_tariff_type_rejected(self, random_instance):
        data = instance_to_dict(random_instance)
        data["chargers"][0]["tariff"] = {"type": "mystery"}
        with pytest.raises(ConfigurationError, match="tariff type"):
            instance_from_dict(data)


class TestScheduleRoundTrip:
    def test_round_trip_preserves_assignment_and_cost(self, random_instance):
        sched = ccsa(random_instance)
        data = schedule_to_dict(sched, random_instance)
        restored = schedule_from_dict(data, random_instance)
        assert restored.canonical() == sched.canonical()
        assert comprehensive_cost(restored, random_instance) == pytest.approx(
            comprehensive_cost(sched, random_instance)
        )
        assert restored.solver == sched.solver
        assert restored.metadata == sched.metadata

    def test_schedule_against_reserialized_instance(self, random_instance):
        # The common workflow: save both, load both, validate.
        sched = ccsa(random_instance)
        inst2 = instance_from_dict(instance_to_dict(random_instance))
        restored = schedule_from_dict(
            schedule_to_dict(sched, random_instance), inst2
        )
        validate_schedule(restored, inst2)

    def test_unknown_device_id_rejected(self, random_instance):
        sched = ccsa(random_instance)
        data = schedule_to_dict(sched, random_instance)
        data["sessions"][0]["members"][0] = "ghost"
        with pytest.raises(KeyError):
            schedule_from_dict(data, random_instance)


class TestFileIO:
    def test_save_load_instance(self, tmp_path, random_instance):
        path = tmp_path / "instance.json"
        save_instance(random_instance, str(path))
        restored = load_instance(str(path))
        assert restored.n_devices == random_instance.n_devices

    def test_save_load_schedule(self, tmp_path, random_instance):
        sched = ccsa(random_instance)
        inst_path = tmp_path / "instance.json"
        sched_path = tmp_path / "schedule.json"
        save_instance(random_instance, str(inst_path))
        save_schedule(sched, random_instance, str(sched_path))
        inst = load_instance(str(inst_path))
        restored = load_schedule(str(sched_path), inst)
        assert restored.canonical() == sched.canonical()
