"""Unit tests for the local-search schedule polisher (extension)."""

from __future__ import annotations

import pytest

from repro.core import (
    Schedule,
    Session,
    ccsa,
    comprehensive_cost,
    improve_schedule,
    noncooperation,
    optimal_schedule,
    random_grouping,
    validate_schedule,
)
from repro.workloads import quick_instance


class TestImproveSchedule:
    def test_never_worse(self):
        for seed in range(6):
            inst = quick_instance(n_devices=10, n_chargers=3, seed=seed, capacity=5)
            start = random_grouping(inst, rng=seed)
            polished = improve_schedule(start, inst)
            assert comprehensive_cost(polished, inst) <= comprehensive_cost(
                start, inst
            ) + 1e-9
            validate_schedule(polished, inst)

    def test_input_schedule_untouched(self, random_instance):
        start = noncooperation(random_instance)
        canonical_before = start.canonical()
        improve_schedule(start, random_instance)
        assert start.canonical() == canonical_before

    def test_optimal_is_a_fixed_point(self):
        inst = quick_instance(n_devices=8, n_chargers=3, seed=4, capacity=4)
        opt = optimal_schedule(inst)
        polished = improve_schedule(opt, inst)
        assert comprehensive_cost(polished, inst) == pytest.approx(
            comprehensive_cost(opt, inst)
        )
        assert polished.metadata["local_search_moves"] == 0.0

    def test_merges_obvious_pairs(self, tiny_instance):
        # Start from singletons: local search must at least find the pairs
        # CCSA finds (d0+d1 at A, d2+d3 at B).
        start = noncooperation(tiny_instance)
        polished = improve_schedule(start, tiny_instance)
        assert comprehensive_cost(polished, tiny_instance) == pytest.approx(
            comprehensive_cost(ccsa(tiny_instance), tiny_instance)
        )

    def test_respects_capacity(self):
        inst = quick_instance(n_devices=12, n_chargers=2, seed=3, capacity=3)
        polished = improve_schedule(noncooperation(inst), inst)
        assert max(s.size for s in polished.sessions) <= 3

    def test_solver_name_tagged(self, random_instance):
        polished = improve_schedule(noncooperation(random_instance), random_instance)
        assert polished.solver == "noncooperation+ls"

    def test_closes_part_of_the_ccsa_gap(self):
        # On small instances, CCSA + local search must land between CCSA
        # and OPT.
        for seed in range(5):
            inst = quick_instance(n_devices=9, n_chargers=3, seed=seed, capacity=5)
            c_ccsa = comprehensive_cost(ccsa(inst), inst)
            c_polished = comprehensive_cost(
                improve_schedule(ccsa(inst), inst), inst
            )
            c_opt = comprehensive_cost(optimal_schedule(inst), inst)
            assert c_opt - 1e-9 <= c_polished <= c_ccsa + 1e-9

    def test_retarget_move(self):
        # A session parked at an absurd charger must be retargeted.
        inst = quick_instance(n_devices=4, n_chargers=3, seed=1, capacity=None)
        worst_charger = max(
            range(inst.n_chargers),
            key=lambda j: inst.group_cost(range(4), j),
        )
        start = Schedule([Session(worst_charger, frozenset(range(4)))])
        polished = improve_schedule(start, inst)
        assert comprehensive_cost(polished, inst) < comprehensive_cost(start, inst)
