"""Tier-1 performance smoke test for the CCSGA hot path.

Runs the smoke case recorded in ``benchmarks/BENCH_ccsga.json`` and fails
only if wall time regresses more than ``fail_factor`` (3×) beyond the
recorded budget — a deliberately loose bound that survives slow CI
machines but catches an accidental reintroduction of the O(n · Σ|S|)
from-scratch candidate scan (which is ~30× over budget at this size).

Also runnable via ``make bench-smoke`` or
``pytest -m bench_smoke``; regenerate the budget with
``PYTHONPATH=src python benchmarks/bench_core_hotpath.py`` after an
intentional performance change.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.core import ccsga
from repro.workloads import quick_instance

BENCH_FILE = Path(__file__).parent.parent / "benchmarks" / "BENCH_ccsga.json"


@pytest.mark.bench_smoke
def test_ccsga_smoke_within_walltime_budget():
    with open(BENCH_FILE) as fh:
        recorded = json.load(fh)
    smoke = recorded["smoke"]
    workload = recorded["workload"]
    instance = quick_instance(
        n_devices=smoke["n_devices"],
        n_chargers=smoke["n_chargers"],
        seed=workload["seed"],
        capacity=workload["capacity"],
        side=workload["side"],
    )
    start = time.perf_counter()
    result = ccsga(instance, certify=False)
    elapsed = time.perf_counter() - start
    assert result.sweeps >= 1
    limit = smoke["budget_s"] * smoke["fail_factor"]
    assert elapsed < limit, (
        f"CCSGA smoke case (n={smoke['n_devices']}) took {elapsed:.3f}s, "
        f"over the regression limit {limit:.3f}s "
        f"(recorded budget {smoke['budget_s']}s x {smoke['fail_factor']}); "
        "the hot path has regressed — or, after an intentional change, "
        "regenerate benchmarks/BENCH_ccsga.json"
    )
