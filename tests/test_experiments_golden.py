"""Golden regression test for the evaluation's headline tables.

Pins the rendered Table 2 and Table 3 (and their aggregate statistics)
against ``tests/fixtures/experiments_golden.json`` so the executor
subsystem — or any future refactor of the experiment harness — cannot
silently drift the numbers EXPERIMENTS.md reports.  The parallel run
doubles as an end-to-end check that ``--jobs`` reproduces the pinned
bytes, not merely that serial == parallel.

Regenerate deliberately via ``make golden-experiments`` (see
``tests/fixtures/capture_experiments_golden.py``) after an intentional
behaviour change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import (
    ParallelExecutor,
    render_table,
    table2_optimality,
    table3_field,
)

GOLDEN_FILE = Path(__file__).parent / "fixtures" / "experiments_golden.json"

TABLE2_ARGS = {"device_counts": (6, 8, 10, 12), "trials": 5, "seed": 101}
TABLE3_ARGS = {"rounds": 10, "seed": 3}


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_FILE) as fh:
        return json.load(fh)


def test_golden_args_in_sync(golden):
    assert golden["table2"]["args"] == {
        k: list(v) if isinstance(v, tuple) else v for k, v in TABLE2_ARGS.items()
    }
    assert golden["table3"]["args"] == dict(TABLE3_ARGS)


def test_table2_rendered_output_pinned(golden):
    stats = table2_optimality(**TABLE2_ARGS)
    assert render_table(stats.table) == golden["table2"]["rendered"]
    assert stats.avg_gap_vs_optimal_pct == pytest.approx(
        golden["table2"]["avg_gap_vs_optimal_pct"], rel=1e-12
    )
    assert stats.avg_saving_vs_nca_pct == pytest.approx(
        golden["table2"]["avg_saving_vs_nca_pct"], rel=1e-12
    )


def test_table3_rendered_output_pinned(golden):
    stats = table3_field(**TABLE3_ARGS)
    assert render_table(stats.table) == golden["table3"]["rendered"]
    assert stats.avg_improvement_pct == pytest.approx(
        golden["table3"]["avg_improvement_pct"], rel=1e-12
    )
    assert stats.ccsa_mean_cost == pytest.approx(
        golden["table3"]["ccsa_mean_cost"], rel=1e-12
    )
    assert stats.nca_mean_cost == pytest.approx(
        golden["table3"]["nca_mean_cost"], rel=1e-12
    )


def test_table2_parallel_matches_golden_bytes(golden):
    """--jobs N must reproduce the pinned bytes, not just serial parity."""
    stats = table2_optimality(**TABLE2_ARGS, executor=ParallelExecutor(2))
    assert render_table(stats.table) == golden["table2"]["rendered"]
