"""End-to-end integration tests: the full pipeline a user would run.

Each test exercises workload generation → scheduling → cost sharing →
(optionally) simulated execution → reporting, across module boundaries.
"""

from __future__ import annotations

import pytest

from repro import (
    EgalitarianSharing,
    ProportionalSharing,
    ccsa,
    ccsga,
    comprehensive_cost,
    member_costs,
    noncooperation,
    optimal_schedule,
    quick_instance,
)
from repro.core import improve_schedule
from repro.experiments import render_series, render_table, sweep_costs, table2_optimality
from repro.sim import FieldTrialConfig, NoiseModel, execute_round
from repro.workloads import SMALL_SCALE_SPEC, testbed_instance as make_testbed


class TestSchedulingPipeline:
    def test_generate_schedule_share_report(self):
        inst = quick_instance(n_devices=15, n_chargers=4, seed=123, capacity=6)

        solo = noncooperation(inst)
        coop = ccsa(inst)
        game = ccsga(inst, scheme=ProportionalSharing())

        c_solo = comprehensive_cost(solo, inst)
        c_coop = comprehensive_cost(coop, inst)
        c_game = comprehensive_cost(game.schedule, inst)
        assert c_coop < c_solo
        assert c_game < c_solo
        assert game.nash_certified

        # Per-device bills are consistent with the totals under both schemes.
        for scheme in (EgalitarianSharing(), ProportionalSharing()):
            bills = member_costs(coop, inst, scheme)
            assert sum(bills.values()) == pytest.approx(c_coop)

        # Cooperation is individually rational under egalitarian sharing at
        # the CCSGA equilibrium: nobody pays more than going alone.
        eq_bills = member_costs(game.schedule, inst, ProportionalSharing())
        for i, bill in eq_bills.items():
            assert bill <= inst.standalone_cost(i) + 1e-6

    def test_full_solver_chain_with_polish(self):
        inst = quick_instance(n_devices=10, n_chargers=3, seed=7, capacity=5)
        chain = improve_schedule(ccsa(inst), inst)
        c_opt = comprehensive_cost(optimal_schedule(inst), inst)
        c_chain = comprehensive_cost(chain, inst)
        c_ccsa = comprehensive_cost(ccsa(inst), inst)
        assert c_opt - 1e-9 <= c_chain <= c_ccsa + 1e-9


class TestSimulationPipeline:
    def test_schedule_then_execute_then_account(self):
        inst = make_testbed(rng=77)
        sched = ccsga(inst).schedule
        outcome = execute_round(
            inst,
            sched,
            FieldTrialConfig(rounds=1, seed=77, noise=NoiseModel.noiseless()),
            round_index=0,
        )
        # Noiseless measured cost equals the planner's objective.
        assert outcome.total_cost == pytest.approx(comprehensive_cost(sched, inst))
        # Every node got exactly its demand.
        for d in inst.devices:
            assert outcome.node_energy[d.device_id] == pytest.approx(d.demand)


class TestExperimentPipeline:
    def test_sweep_renders_and_orders(self):
        res = sweep_costs(
            "itest", "integration sweep", SMALL_SCALE_SPEC, "n_devices", [5, 8],
            trials=2, seed=11,
        )
        text = render_series(res)
        assert "integration sweep" in text
        for k in range(2):
            assert res.series["CCSA"][k] <= res.series["NCA"][k] + 1e-9

    def test_table2_end_to_end(self):
        stats = table2_optimality(device_counts=(6,), trials=2, seed=5)
        text = render_table(stats.table)
        assert "Table 2" in text
        assert stats.avg_gap_vs_optimal_pct >= 0.0


class TestPublicApiSurface:
    def test_star_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_exports_resolve(self):
        import repro.core, repro.game, repro.geometry, repro.sim
        import repro.submodular, repro.workloads, repro.experiments

        for mod in (
            repro.core, repro.game, repro.geometry, repro.sim,
            repro.submodular, repro.workloads, repro.experiments,
        ):
            for name in mod.__all__:
                assert getattr(mod, name) is not None, f"{mod.__name__}.{name}"
