"""Facade tests: the sharded service behind the kernel-compatible API."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError, ServiceError
from repro.geometry import Field, Point
from repro.service import ChargingService, ServiceConfig, generate_requests
from repro.shard import ShardedService, merge_final_schedules, shard_journal_name
from repro.shard.service import MANIFEST_NAME
from repro.wpt import Charger

FIELD = Field(100.0, 100.0)
CONFIG = ServiceConfig(epoch=60.0, window=120.0)


def make_chargers():
    return [
        Charger(charger_id="c0", position=Point(25.0, 25.0)),
        Charger(charger_id="c1", position=Point(75.0, 25.0)),
        Charger(charger_id="c2", position=Point(25.0, 75.0)),
        Charger(charger_id="c3", position=Point(75.0, 75.0)),
    ]


def make_stream(n=24, seed=11):
    return generate_requests(
        n, rate=0.2, deadline_slack=900.0, max_price_factor=1.3, rng=seed
    )


def run_service(tmp_path=None, n_shards=4, stream=None, halo=0.0):
    stream = stream if stream is not None else make_stream()
    svc = ShardedService(
        make_chargers(), n_shards=n_shards, field=FIELD, halo=halo,
        config=CONFIG,
        journal_dir=None if tmp_path is None else tmp_path / "journals",
        journal_sync=False,
    )
    for r in stream:
        svc.submit(r)
    svc.advance(stream[-1].submitted_at + 300.0)
    svc.drain()
    return svc, stream


class TestFacadeBasics:
    def test_one_kernel_per_charger_owning_cell(self):
        svc, _ = run_service()
        assert sorted(svc.kernels) == [0, 1, 2, 3]
        for sid, kernel in svc.kernels.items():
            assert isinstance(kernel, ChargingService)
            assert [c.charger_id for c in svc.shard_chargers[sid]] == [f"c{sid}"]

    def test_empty_cells_get_no_kernel(self):
        chargers = [Charger(charger_id="c0", position=Point(25.0, 25.0))]
        svc = ShardedService(chargers, n_shards=4, field=FIELD, config=CONFIG)
        assert sorted(svc.kernels) == [0]

    def test_no_chargers_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedService([], n_shards=2, field=FIELD)

    def test_counts_conserve_the_stream(self):
        svc, stream = run_service()
        counts = svc.counts()
        assert sum(counts.values()) == len(stream)
        # Fully drained: nothing left in a live state.
        assert counts.get("admitted", 0) == counts.get("grouped", 0) == 0
        assert counts.get("charging", 0) == 0

    def test_request_state_and_unknown_request(self):
        svc, stream = run_service()
        assert isinstance(svc.request_state(stream[0].request_id), str)
        with pytest.raises(KeyError):
            svc.request_state("nope")
        assert svc.cancel("nope") is None

    def test_unknown_charger_raises(self):
        svc, _ = run_service()
        with pytest.raises(ServiceError):
            svc.fail_charger("ghost")

    def test_submit_is_idempotent_through_the_router(self):
        svc, stream = run_service()
        before = svc.counts()
        svc.submit(stream[0])  # re-feed: sticky route, kernel no-ops
        assert svc.counts() == before


class TestMergedViews:
    def test_schedule_is_sorted_and_tagged(self):
        svc, _ = run_service()
        schedule = svc.final_schedule()
        assert schedule
        assert all("shard" in s for s in schedule)
        keys = [(s["departed"], s["shard"], s["seq"]) for s in schedule]
        assert keys == sorted(keys)

    def test_merge_final_schedules_is_deterministic(self):
        svc, _ = run_service()
        per_shard = {
            sid: kernel.final_schedule() for sid, kernel in svc.kernels.items()
        }
        reversed_order = dict(sorted(per_shard.items(), reverse=True))
        assert merge_final_schedules(per_shard) == (
            merge_final_schedules(reversed_order)
        )

    def test_metrics_counters_sum_over_shards(self):
        svc, _ = run_service()
        merged = svc.metrics_snapshot()
        by_shard = [k.metrics_snapshot() for _, k in sorted(svc.kernels.items())]
        for name, total in merged["counters"].items():
            assert total == sum(s["counters"].get(name, 0) for s in by_shard)
        # Gauges are per-shard labeled, never summed.
        for name, labels in merged["gauges"].items():
            assert set(labels) <= {f"shard-{sid:04d}" for sid in svc.kernels}


class TestDurability:
    def test_manifest_written_and_versioned(self, tmp_path):
        svc, _ = run_service(tmp_path)
        doc = json.loads((tmp_path / "journals" / MANIFEST_NAME).read_text())
        assert doc["schema"] == 1
        assert doc["n_shards"] == 4
        assert doc["shards"] == {
            "0": ["c0"], "1": ["c1"], "2": ["c2"], "3": ["c3"]
        }

    def test_recover_matches_the_dead_service(self, tmp_path):
        svc, _ = run_service(tmp_path)
        svc.close()
        rec = ShardedService.recover(
            tmp_path / "journals", make_chargers(), config=CONFIG,
            journal_sync=False,
        )
        rec.close()
        assert rec.final_schedule() == svc.final_schedule()
        assert rec.metrics_snapshot() == svc.metrics_snapshot()
        assert rec.counts() == svc.counts()
        assert rec.router.assignment == svc.router.assignment

    def test_recovered_service_keeps_serving(self, tmp_path):
        svc, stream = run_service(tmp_path)
        svc.close()
        rec = ShardedService.recover(
            tmp_path / "journals", make_chargers(), config=CONFIG,
            journal_sync=False,
        )
        extra = make_stream(n=5, seed=77)
        t0 = max(k.clock.now for k in rec.kernels.values())
        for k, r in enumerate(extra):
            rec.submit(
                type(r)(
                    request_id=f"extra-{k}",
                    device=r.device,
                    submitted_at=t0 + 1.0 + r.submitted_at,
                )
            )
        rec.drain()
        rec.close()
        assert sum(rec.counts().values()) == len(stream) + len(extra)

    def test_recover_rejects_unknown_manifest_schema(self, tmp_path):
        svc, _ = run_service(tmp_path)
        svc.close()
        path = tmp_path / "journals" / MANIFEST_NAME
        doc = json.loads(path.read_text())
        doc["schema"] = 99
        path.write_text(json.dumps(doc))
        with pytest.raises(ServiceError):
            ShardedService.recover(tmp_path / "journals", make_chargers(),
                                   config=CONFIG)

    def test_recover_rejects_missing_chargers(self, tmp_path):
        svc, _ = run_service(tmp_path)
        svc.close()
        with pytest.raises(ServiceError):
            ShardedService.recover(
                tmp_path / "journals", make_chargers()[:2], config=CONFIG
            )

    def test_journal_less_shard_cannot_recover(self):
        svc, _ = run_service(tmp_path=None)
        with pytest.raises(ServiceError):
            svc.kill_and_recover_shard(0)

    def test_journal_files_one_per_kernel(self, tmp_path):
        svc, _ = run_service(tmp_path)
        svc.close()
        names = sorted(p.name for p in (tmp_path / "journals").iterdir())
        assert names == [MANIFEST_NAME] + [shard_journal_name(s) for s in range(4)]
