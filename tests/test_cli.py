"""Tests for the ``ccs-bench`` command-line interface."""

from __future__ import annotations


from repro.cli import main
from repro.experiments import EXPERIMENTS


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out.split()
        assert sorted(out) == sorted(EXPERIMENTS)

    def test_run_single_experiment(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_no_args_is_an_error(self, capsys):
        assert main([]) == 2
        assert "nothing to run" in capsys.readouterr().err

    def test_unknown_id_is_an_error(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_trials_flag_parsed(self, capsys):
        assert main(["table1", "--trials", "1"]) == 0

    def test_entry_point_registered(self):
        import tomllib

        with open("pyproject.toml", "rb") as fh:
            cfg = tomllib.load(fh)
        assert cfg["project"]["scripts"]["ccs-bench"] == "repro.cli:main"
