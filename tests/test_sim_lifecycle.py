"""Tests for the continuous-operation lifecycle simulation (extension)."""

from __future__ import annotations

import pytest

from repro.core import ccsa, noncooperation
from repro.energy import ConstantPowerConsumption
from repro.errors import ConfigurationError
from repro.sim import LifecycleConfig, run_lifecycle


class TestLifecycleConfig:
    def test_defaults_valid(self):
        cfg = LifecycleConfig()
        assert cfg.epochs == 20

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(epochs=0),
            dict(epoch_seconds=0.0),
            dict(soc_request_threshold=0.9, target_soc=0.8),
            dict(soc_request_threshold=0.0),
            dict(initial_soc=0.0),
            dict(initial_soc=1.5),
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            LifecycleConfig(**kwargs)


class TestRunLifecycle:
    def test_basic_run(self):
        res = run_lifecycle(ccsa, LifecycleConfig(epochs=12, seed=3))
        assert len(res.requests_per_epoch) == 12
        assert res.charging_rounds >= 1
        assert res.total_cost > 0
        assert res.total_energy_delivered > 0
        assert 0.0 <= res.survival_rate <= 1.0

    def test_deterministic(self):
        cfg = LifecycleConfig(epochs=10, seed=4)
        a = run_lifecycle(ccsa, cfg)
        b = run_lifecycle(ccsa, cfg)
        assert a.total_cost == b.total_cost
        assert a.requests_per_epoch == b.requests_per_epoch

    def test_requests_appear_periodically(self):
        res = run_lifecycle(ccsa, LifecycleConfig(epochs=15, seed=5))
        # Sensing drain must eventually push nodes below the threshold.
        assert sum(res.requests_per_epoch) > 0
        # After a charge, nodes are full again, so not every epoch requests.
        assert 0 in res.requests_per_epoch

    def test_cooperation_cheaper_in_steady_state(self):
        cfg = LifecycleConfig(epochs=12, seed=6)
        coop = run_lifecycle(ccsa, cfg)
        solo = run_lifecycle(noncooperation, cfg)
        assert coop.charging_rounds == solo.charging_rounds
        assert coop.total_cost < solo.total_cost

    def test_idle_consumption_never_requests(self):
        res = run_lifecycle(
            ccsa,
            LifecycleConfig(epochs=5, seed=7),
            consumption=ConstantPowerConsumption(0.0),
        )
        assert res.charging_rounds == 0
        assert res.total_cost == 0.0
        assert res.survival_rate == 1.0

    def test_starvation_kills_nodes(self):
        # Drain far faster than any charging can replenish within an epoch
        # budget of zero requests (threshold never reached before death).
        res = run_lifecycle(
            ccsa,
            LifecycleConfig(
                epochs=3,
                epoch_seconds=30_000.0,
                seed=8,
            ),
            consumption=ConstantPowerConsumption(5.0),
        )
        assert res.survival_rate < 1.0

    def test_costs_accumulate_across_rounds(self):
        res = run_lifecycle(ccsa, LifecycleConfig(epochs=12, seed=9))
        assert res.total_cost == pytest.approx(
            sum(r.total_cost for r in res.rounds)
        )
