"""Unit tests for the densest-group oracles behind CCSA."""

from __future__ import annotations

import itertools

import pytest

from repro.core import CCSInstance, Device, densest_group, group_cost_function
from repro.core.density import _demands_uniform
from repro.errors import ConfigurationError
from repro.geometry import Point
from repro.submodular import is_submodular
from repro.workloads import quick_instance
from repro.wpt import Charger, PowerLawTariff


def brute_density(instance, charger, candidates, cap):
    best = None
    for t in range(1, len(candidates) + 1):
        if cap is not None and t > cap:
            break
        for combo in itertools.combinations(candidates, t):
            d = instance.group_cost(combo, charger) / t
            if best is None or d < best:
                best = d
    return best


@pytest.fixture
def uniform_demand_instance():
    devices = [
        Device(f"d{i}", Point(float(i * 10), 0.0), demand=1000.0, moving_rate=0.2)
        for i in range(6)
    ]
    chargers = [
        Charger(
            "c", Point(0.0, 5.0),
            tariff=PowerLawTariff(base=20.0, unit=0.01, exponent=0.9),
            efficiency=0.8, capacity=4,
        )
    ]
    return CCSInstance(devices=devices, chargers=chargers)


class TestGroupCostFunction:
    def test_reindexing(self, tiny_instance):
        f = group_cost_function(tiny_instance, 0, [2, 3])
        assert f.n == 2
        assert f({0}) == pytest.approx(tiny_instance.group_cost([2], 0))
        assert f({0, 1}) == pytest.approx(tiny_instance.group_cost([2, 3], 0))

    def test_is_submodular(self, tiny_instance):
        for j in range(tiny_instance.n_chargers):
            f = group_cost_function(tiny_instance, j, list(range(4)))
            assert is_submodular(f)

    def test_normalized_at_empty(self, tiny_instance):
        f = group_cost_function(tiny_instance, 0, [0, 1])
        assert f(frozenset()) == 0.0


class TestDemandsUniform:
    def test_detects_uniform(self, uniform_demand_instance):
        assert _demands_uniform(uniform_demand_instance, [0, 1, 2])

    def test_detects_heterogeneous(self, tiny_instance):
        assert not _demands_uniform(tiny_instance, [0, 1, 2])


@pytest.mark.parametrize("method", ["exhaustive", "sfm", "auto"])
class TestDensestGroupExactMethods:
    def test_matches_brute_force(self, tiny_instance, method):
        candidates = list(range(4))
        for j in range(tiny_instance.n_chargers):
            prop = densest_group(tiny_instance, j, candidates, method=method)
            expected = brute_density(tiny_instance, j, candidates, tiny_instance.capacity_of(j))
            assert prop.density == pytest.approx(expected, rel=1e-6)
            assert prop.cost == pytest.approx(
                tiny_instance.group_cost(prop.members, j)
            )

    def test_respects_capacity(self, uniform_demand_instance, method):
        prop = densest_group(uniform_demand_instance, 0, list(range(6)), method=method)
        assert 1 <= len(prop.members) <= 4


class TestPrefixOracle:
    def test_exact_for_uniform_demands(self, uniform_demand_instance):
        prop = densest_group(uniform_demand_instance, 0, list(range(6)), method="prefix")
        expected = brute_density(uniform_demand_instance, 0, list(range(6)), 4)
        assert prop.density == pytest.approx(expected)

    def test_auto_dispatches_to_prefix_on_uniform(self, uniform_demand_instance):
        prop = densest_group(uniform_demand_instance, 0, list(range(6)), method="auto")
        assert prop.method == "prefix"

    def test_prefix_takes_closest_devices(self, uniform_demand_instance):
        prop = densest_group(uniform_demand_instance, 0, list(range(6)), method="prefix")
        # Devices are on a line with charger near d0: the chosen group must
        # be a prefix of the distance ordering 0,1,2,...
        assert prop.members == frozenset(range(len(prop.members)))


class TestDensestGroupValidation:
    def test_empty_candidates_rejected(self, tiny_instance):
        with pytest.raises(ValueError):
            densest_group(tiny_instance, 0, [])

    def test_duplicate_candidates_rejected(self, tiny_instance):
        with pytest.raises(ValueError):
            densest_group(tiny_instance, 0, [0, 0, 1])

    def test_unknown_method_rejected(self, tiny_instance):
        with pytest.raises(ConfigurationError):
            densest_group(tiny_instance, 0, [0, 1], method="magic")


class TestLargeCandidateSets:
    def test_sfm_path_handles_many_candidates(self):
        inst = quick_instance(n_devices=20, n_chargers=2, seed=5, capacity=None)
        prop = densest_group(inst, 0, list(range(20)), method="sfm")
        assert prop.members
        # Density can't beat the best singleton scaled: sanity bound.
        best_singleton = min(inst.group_cost([i], 0) for i in range(20))
        assert prop.density <= best_singleton + 1e-9

    def test_auto_beats_or_matches_prefix_heuristic(self):
        inst = quick_instance(n_devices=18, n_chargers=2, seed=6, capacity=None)
        auto = densest_group(inst, 0, list(range(18)), method="auto", exhaustive_limit=4)
        prefix = densest_group(inst, 0, list(range(18)), method="prefix")
        assert auto.density <= prefix.density + 1e-9
