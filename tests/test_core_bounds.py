"""Tests for the certified CCS lower bound (extension)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ccsa, comprehensive_cost, noncooperation, optimal_schedule
from repro.core.bounds import lower_bound
from repro.workloads import quick_instance


class TestLowerBound:
    def test_components_nonnegative(self, random_instance):
        lb = lower_bound(random_instance)
        assert lb.moving >= 0 and lb.volume >= 0 and lb.base_fees >= 0
        assert lb.total == pytest.approx(lb.moving + lb.volume + lb.base_fees)

    def test_below_optimum_on_small_instances(self):
        for seed in range(12):
            inst = quick_instance(n_devices=8, n_chargers=3, seed=seed, capacity=4)
            lb = lower_bound(inst).total
            opt = comprehensive_cost(optimal_schedule(inst), inst)
            assert lb <= opt + 1e-9, f"seed {seed}: LB {lb} > OPT {opt}"

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=9),
        m=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=100_000),
        exponent=st.sampled_from([0.6, 0.8, 1.0]),
        capacity=st.sampled_from([None, 3, 6]),
    )
    def test_below_optimum_property(self, n, m, seed, exponent, capacity):
        inst = quick_instance(
            n_devices=n, n_chargers=m, seed=seed,
            tariff_exponent=exponent, capacity=capacity,
        )
        assert lower_bound(inst).total <= comprehensive_cost(
            optimal_schedule(inst), inst
        ) + 1e-9

    def test_usable_at_scale(self):
        # LB is O(n*m): must be instant and sit below CCSA at n=100.
        inst = quick_instance(n_devices=100, n_chargers=8, seed=1, capacity=8)
        lb = lower_bound(inst).total
        c_nca = comprehensive_cost(noncooperation(inst), inst)
        assert 0 < lb < c_nca

    def test_nontrivial_fraction_of_ccsa(self):
        # The bound should be informative, not vacuous: at least half of
        # CCSA's cost on default workloads.
        inst = quick_instance(n_devices=40, n_chargers=5, seed=2, capacity=6)
        lb = lower_bound(inst).total
        c_ccsa = comprehensive_cost(ccsa(inst), inst)
        assert lb >= 0.5 * c_ccsa

    def test_unbounded_capacity_single_base_fee(self):
        inst = quick_instance(n_devices=10, n_chargers=3, seed=3, capacity=None)
        lb = lower_bound(inst)
        assert lb.base_fees == pytest.approx(
            min(c.tariff.base for c in inst.chargers)
        )
