"""Unit tests for the intragroup cost-sharing schemes."""

from __future__ import annotations

import pytest

from repro.core import (
    EgalitarianSharing,
    ProportionalSharing,
    Schedule,
    Session,
    ShapleySharing,
    comprehensive_cost,
    individual_cost,
    member_costs,
)
from repro.errors import ConfigurationError

ALL_SCHEMES = [
    EgalitarianSharing(),
    ProportionalSharing(),
    ShapleySharing(exact_limit=6, samples=300),
]


@pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
class TestCommonProperties:
    def test_budget_balance(self, tiny_instance, scheme):
        members = [0, 1, 2]
        shares = scheme.shares(tiny_instance, members, 0)
        price = tiny_instance.charging_price(members, 0)
        assert sum(shares.values()) == pytest.approx(price)
        assert set(shares) == set(members)

    def test_nonnegative_shares(self, tiny_instance, scheme):
        shares = scheme.shares(tiny_instance, [0, 1, 2, 3], 1)
        assert all(v >= 0 for v in shares.values())

    def test_singleton_pays_full_price(self, tiny_instance, scheme):
        shares = scheme.shares(tiny_instance, [2], 1)
        assert shares[2] == pytest.approx(tiny_instance.charging_price([2], 1))

    def test_empty_group_rejected(self, tiny_instance, scheme):
        with pytest.raises(ValueError):
            scheme.shares(tiny_instance, [], 0)

    def test_duplicate_members_rejected(self, tiny_instance, scheme):
        with pytest.raises(ValueError):
            scheme.shares(tiny_instance, [0, 0, 1], 0)

    def test_individual_rationality_in_tiny_instance(self, tiny_instance, scheme):
        # Joining the natural pair group never beats going alone here.
        for i, group, charger in [(0, [0, 1], 0), (2, [2, 3], 1)]:
            coop = individual_cost(tiny_instance, i, group, charger, scheme)
            assert coop <= tiny_instance.standalone_cost(i) + 1e-9


class TestEgalitarian:
    def test_equal_split(self, tiny_instance):
        shares = EgalitarianSharing().shares(tiny_instance, [0, 1, 2], 0)
        values = list(shares.values())
        assert max(values) == pytest.approx(min(values))

    def test_share_shrinks_as_group_grows_uniform_demands(self):
        # Cross-monotonicity on equal demands: with a base fee, the per-head
        # share must fall when (identical) members join.
        from repro.core import CCSInstance, Device
        from repro.geometry import Point
        from repro.wpt import Charger, LinearTariff

        devices = [
            Device(f"d{i}", Point(float(i), 0.0), demand=100.0) for i in range(3)
        ]
        charger = Charger(
            "c", Point(0, 0), tariff=LinearTariff(base=5.0, unit=0.1), efficiency=0.5
        )
        inst = CCSInstance(devices=devices, chargers=[charger])
        scheme = EgalitarianSharing()
        s1 = scheme.shares(inst, [0], 0)[0]
        s2 = scheme.shares(inst, [0, 1], 0)[0]
        s3 = scheme.shares(inst, [0, 1, 2], 0)[0]
        assert s3 < s2 < s1


class TestProportional:
    def test_split_proportional_to_demand(self, linear_instance):
        shares = ProportionalSharing().shares(linear_instance, [0, 1, 2], 0)
        # demands 100, 200, 300
        assert shares[1] == pytest.approx(2 * shares[0])
        assert shares[2] == pytest.approx(3 * shares[0])

    def test_per_joule_price_is_uniform(self, tiny_instance):
        shares = ProportionalSharing().shares(tiny_instance, [0, 1, 2, 3], 0)
        per_joule = {
            i: shares[i] / tiny_instance.devices[i].demand for i in shares
        }
        vals = list(per_joule.values())
        assert max(vals) == pytest.approx(min(vals))


class TestShapley:
    def test_exact_matches_proportional_on_linear_tariff(self, linear_instance):
        # With a linear volume charge, Shapley splits the base fee equally
        # and the volume charge proportionally.
        shap = ShapleySharing(exact_limit=8).shares(linear_instance, [0, 1, 2], 0)
        base = linear_instance.chargers[0].tariff.base
        unit = linear_instance.chargers[0].tariff.unit
        eff = linear_instance.chargers[0].efficiency
        for i, demand in [(0, 100.0), (1, 200.0), (2, 300.0)]:
            expected = base / 3 + unit * demand / eff
            assert shap[i] == pytest.approx(expected)

    def test_symmetry_for_equal_demands(self, tiny_instance):
        # Construct two members with equal demand by picking d0 twice is not
        # possible; instead verify d0 and a clone-demand scenario via the
        # instance's own devices with closest demands: exact equality only
        # holds for identical demands, so check the ordering instead.
        shares = ShapleySharing(exact_limit=8).shares(tiny_instance, [0, 1, 2, 3], 0)
        demands = {i: tiny_instance.devices[i].demand for i in shares}
        order_by_share = sorted(shares, key=shares.get)
        order_by_demand = sorted(demands, key=demands.get)
        assert order_by_share == order_by_demand

    def test_sampled_close_to_exact(self, tiny_instance):
        exact = ShapleySharing(exact_limit=8).shares(tiny_instance, [0, 1, 2, 3], 0)
        sampled = ShapleySharing(exact_limit=1, samples=4000, seed=3).shares(
            tiny_instance, [0, 1, 2, 3], 0
        )
        for i in exact:
            assert sampled[i] == pytest.approx(exact[i], rel=0.05)

    def test_sampling_is_deterministic_for_seed(self, tiny_instance):
        a = ShapleySharing(exact_limit=1, samples=200, seed=9).shares(
            tiny_instance, [0, 1, 2, 3], 0
        )
        b = ShapleySharing(exact_limit=1, samples=200, seed=9).shares(
            tiny_instance, [0, 1, 2, 3], 0
        )
        assert a == b

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ShapleySharing(exact_limit=0)
        with pytest.raises(ConfigurationError):
            ShapleySharing(samples=0)


class TestMemberCosts:
    def test_sum_equals_comprehensive_cost(self, tiny_instance):
        sched = Schedule([Session(0, {0, 1}), Session(1, {2, 3})])
        for scheme in ALL_SCHEMES:
            costs = member_costs(sched, tiny_instance, scheme)
            assert sum(costs.values()) == pytest.approx(
                comprehensive_cost(sched, tiny_instance)
            )

    def test_individual_cost_requires_membership(self, tiny_instance):
        with pytest.raises(ValueError):
            individual_cost(tiny_instance, 3, [0, 1], 0, EgalitarianSharing())

    def test_individual_cost_includes_moving(self, tiny_instance):
        scheme = EgalitarianSharing()
        cost = individual_cost(tiny_instance, 0, [0, 1], 0, scheme)
        share = scheme.shares(tiny_instance, [0, 1], 0)[0]
        assert cost == pytest.approx(share + tiny_instance.moving_cost(0, 0))
