"""The on-disk result cache: round-trips, corruption handling, resume.

Robustness contract: a cache entry that is truncated, bit-flipped,
hand-edited, or simply garbage is *detected* (checksum / fingerprint /
schema validation), logged, and recomputed — never crashed on, never
served stale.  Resume contract: a run killed partway leaves its finished
tasks behind, and a restart with the same cache dir recomputes only the
missing ones (counted via the executors' ``computed`` bookkeeping).
"""

from __future__ import annotations

import json
import logging

import pytest

from repro.cli import main
from repro.errors import UnknownExperimentError
from repro.experiments import run_all, run_experiment
from repro.experiments.exec import (
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
    Task,
    execute_task,
    task_kind,
)
from repro.experiments.exec.task import _KINDS


@pytest.fixture
def counting_kind(tmp_path):
    """A registered task kind that counts executions and can be 'killed'.

    Each execution appends to a side file (so counts survive worker
    processes); if the poison file exists, trials >= 2 raise — simulating
    a run dying partway through.
    """
    calls = tmp_path / "calls.log"
    poison = tmp_path / "poison"
    name = "test_counting"

    @task_kind(name)
    def _counting(params, seed, trial):
        with open(calls, "a") as fh:
            fh.write(f"{trial}\n")
        if poison.exists() and trial >= 2:
            raise RuntimeError(f"injected failure at trial {trial}")
        return {"value": float(seed + trial * 10)}

    yield {
        "name": name,
        "calls": lambda: len(calls.read_text().splitlines()) if calls.exists() else 0,
        "poison": poison,
    }
    del _KINDS[name]


def _tasks(name, n=5, seed=7):
    return [Task(kind=name, params={"i": "x"}, seed=seed, trial=t) for t in range(n)]


class TestCacheRoundTrip:
    def test_store_then_load(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = Task(kind="k", params={"a": 1}, seed=3, trial=2)
        result = {"cost": 12.5, "n": 4, "rows": [[1, 2.0, "x"]]}
        cache.store(task, result)
        hit, loaded = cache.load(task)
        assert hit and loaded == result
        assert len(cache) == 1

    def test_miss_on_empty_cache(self, tmp_path):
        hit, value = ResultCache(tmp_path).load(Task(kind="k", seed=1))
        assert not hit and value is None

    def test_different_tasks_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path)
        t1 = Task(kind="k", params={"a": 1}, seed=1)
        t2 = Task(kind="k", params={"a": 1}, seed=2)
        cache.store(t1, "one")
        cache.store(t2, "two")
        assert cache.load(t1) == (True, "one")
        assert cache.load(t2) == (True, "two")


class TestCacheCorruption:
    def _stored(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = Task(kind="k", params={"a": 1}, seed=3)
        path = cache.store(task, {"cost": 1.25})
        return cache, task, path

    def _assert_detected(self, cache, task, path, caplog):
        with caplog.at_level(logging.WARNING, "repro.experiments.exec.cache"):
            hit, value = cache.load(task)
        assert not hit and value is None
        assert any("discarding cache entry" in r.message for r in caplog.records)
        assert not path.exists(), "corrupt entry should be deleted"

    def test_truncated_entry_detected(self, tmp_path, caplog):
        cache, task, path = self._stored(tmp_path)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        self._assert_detected(cache, task, path, caplog)

    def test_garbage_entry_detected(self, tmp_path, caplog):
        cache, task, path = self._stored(tmp_path)
        path.write_bytes(b"\x00\xff not json")
        self._assert_detected(cache, task, path, caplog)

    def test_tampered_result_fails_checksum(self, tmp_path, caplog):
        cache, task, path = self._stored(tmp_path)
        doc = json.loads(path.read_text())
        doc["result"]["cost"] = 999.0  # stale/poisoned value, checksum now wrong
        path.write_text(json.dumps(doc))
        self._assert_detected(cache, task, path, caplog)

    def test_misplaced_entry_fails_fingerprint(self, tmp_path, caplog):
        cache, task, path = self._stored(tmp_path)
        other = Task(kind="k", params={"a": 2}, seed=3)
        # Simulate a mis-filed entry: another task's document at this path.
        other_path = cache.store(other, {"cost": 7.0})
        path.write_text(other_path.read_text())
        self._assert_detected(cache, task, path, caplog)

    def test_wrong_version_entry_detected(self, tmp_path, caplog):
        cache, task, path = self._stored(tmp_path)
        doc = json.loads(path.read_text())
        doc["version"] = 999
        path.write_text(json.dumps(doc))
        self._assert_detected(cache, task, path, caplog)

    def test_corrupt_entry_is_recomputed_through_executor(
        self, tmp_path, caplog, counting_kind
    ):
        cache = ResultCache(tmp_path / "cache")
        tasks = _tasks(counting_kind["name"], n=2)
        ex = SerialExecutor(cache=cache)
        first = ex.run(tasks)
        assert counting_kind["calls"]() == 2

        cache.path_for(tasks[0]).write_text("{broken")
        ex2 = SerialExecutor(cache=ResultCache(tmp_path / "cache"))
        with caplog.at_level(logging.WARNING, "repro.experiments.exec.cache"):
            again = ex2.run(tasks)
        assert again == first
        assert ex2.computed == 1 and ex2.cache_hits == 1
        assert counting_kind["calls"]() == 3  # only the corrupted task reran

        # The rewritten entry is healthy again.
        ex3 = SerialExecutor(cache=ResultCache(tmp_path / "cache"))
        assert ex3.run(tasks) == first and ex3.computed == 0


class TestResume:
    def test_completed_tasks_not_recomputed(self, tmp_path, counting_kind):
        cache_dir = tmp_path / "cache"
        tasks = _tasks(counting_kind["name"])

        ex1 = SerialExecutor(cache=ResultCache(cache_dir))
        ex1.run(tasks[:3])
        assert ex1.computed == 3

        ex2 = SerialExecutor(cache=ResultCache(cache_dir))
        results = ex2.run(tasks)
        assert ex2.computed == 2 and ex2.cache_hits == 3
        assert counting_kind["calls"]() == 5
        assert results == [{"value": float(7 + t * 10)} for t in range(5)]

    def test_killed_run_resumes_from_cache(self, tmp_path, counting_kind):
        """A run that dies partway is completed by a restart, not redone."""
        cache_dir = tmp_path / "cache"
        tasks = _tasks(counting_kind["name"])

        counting_kind["poison"].write_text("")  # the run will die at trial 2
        ex1 = SerialExecutor(cache=ResultCache(cache_dir))
        with pytest.raises(RuntimeError, match="injected failure"):
            ex1.run(tasks)
        assert ex1.computed == 2  # trials 0 and 1 finished and were cached

        counting_kind["poison"].unlink()
        ex2 = SerialExecutor(cache=ResultCache(cache_dir))
        results = ex2.run(tasks)
        assert ex2.cache_hits == 2 and ex2.computed == 3
        # First run: trials 0, 1 and the fatal attempt at 2 (3 calls);
        # resume: trials 2, 3, 4 (3 calls) — 0 and 1 never recomputed.
        assert counting_kind["calls"]() == 3 + 3
        assert results == [{"value": float(7 + t * 10)} for t in range(5)]

    def test_parallel_resumes_serial_cache_and_vice_versa(self, tmp_path, counting_kind):
        cache_dir = tmp_path / "cache"
        tasks = _tasks(counting_kind["name"])
        SerialExecutor(cache=ResultCache(cache_dir)).run(tasks[:2])

        par = ParallelExecutor(2, cache=ResultCache(cache_dir))
        par.run(tasks)
        assert par.cache_hits == 2 and par.computed == 3

        ser = SerialExecutor(cache=ResultCache(cache_dir))
        ser.run(tasks)
        assert ser.cache_hits == 5 and ser.computed == 0

    def test_cli_second_run_computes_nothing(self, tmp_path, capsys):
        argv = ["table3", "--trials", "1", "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "1 computed, 0 from cache" in first.err

        assert main(argv) == 0
        second = capsys.readouterr()
        assert "0 computed, 1 from cache" in second.err
        assert second.out == first.out

    def test_cli_no_cache_always_computes(self, tmp_path, capsys):
        argv = [
            "table3", "--trials", "1", "--cache-dir", str(tmp_path / "c"), "--no-cache",
        ]
        for _ in range(2):
            assert main(argv) == 0
            assert "1 computed, 0 from cache" in capsys.readouterr().err
        assert not (tmp_path / "c").exists()


class TestRunAllValidation:
    def test_run_all_unknown_id_raises(self):
        with pytest.raises(UnknownExperimentError, match="fig99"):
            run_all(trials=1, only=["table1", "fig99"])

    def test_run_all_validates_before_running_anything(self, tmp_path):
        cache_dir = tmp_path / "cache"
        with pytest.raises(UnknownExperimentError):
            run_all(
                trials=1,
                only=["table3", "nope"],
                executor=SerialExecutor(cache=ResultCache(cache_dir)),
            )
        assert len(ResultCache(cache_dir)) == 0, "no experiment should have run"

    def test_run_experiment_unknown_id_raises_keyerror_compatible(self):
        with pytest.raises(UnknownExperimentError):
            run_experiment("fig99")
        with pytest.raises(KeyError, match="available"):
            run_experiment("fig99")

    def test_unknown_task_kind_raises(self):
        from repro.experiments.exec import TaskKindError

        with pytest.raises(TaskKindError, match="no_such_kind"):
            execute_task(Task(kind="no_such_kind"))
