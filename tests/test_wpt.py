"""Unit tests for the WPT substrate: propagation, tariffs, chargers."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.geometry import Point
from repro.wpt import (
    Charger,
    LinearTariff,
    PiecewiseConcaveTariff,
    PowerLawTariff,
    Tariff,
    WptLink,
    contact_efficiency,
    is_concave_nondecreasing,
)


class TestPropagation:
    def test_efficiency_decreases_with_distance(self):
        link = WptLink(alpha=0.64, beta=1.0, d_max=5.0)
        effs = [link.efficiency(d) for d in (0.0, 0.5, 1.0, 2.0, 4.0)]
        assert all(a > b for a, b in zip(effs, effs[1:]))

    def test_efficiency_zero_beyond_range(self):
        link = WptLink(alpha=0.64, beta=1.0, d_max=2.0)
        assert link.efficiency(2.0) > 0.0
        assert link.efficiency(2.01) == 0.0

    def test_received_power(self):
        link = WptLink(alpha=0.5, beta=1.0, d_max=10.0)
        assert link.received_power(10.0, 0.0) == pytest.approx(5.0)
        assert link.received_power(0.0, 0.0) == 0.0

    def test_contact_efficiency_factory(self):
        link = contact_efficiency(0.8)
        assert link.efficiency(0.0) == pytest.approx(0.8)

    def test_superunit_contact_efficiency_rejected(self):
        with pytest.raises(ConfigurationError):
            WptLink(alpha=9.0, beta=1.0, d_max=2.0)
        with pytest.raises(ConfigurationError):
            contact_efficiency(1.2)

    def test_negative_inputs_rejected(self):
        link = contact_efficiency(0.5)
        with pytest.raises(ValueError):
            link.efficiency(-1.0)
        with pytest.raises(ValueError):
            link.received_power(-1.0, 0.0)


class TestTariffs:
    def test_linear_price(self):
        t = LinearTariff(base=5.0, unit=0.1)
        assert t.session_price(100.0) == pytest.approx(15.0)

    def test_empty_session_is_free(self):
        for t in (
            LinearTariff(base=5.0, unit=0.1),
            PowerLawTariff(base=5.0, unit=0.1, exponent=0.8),
            PiecewiseConcaveTariff(base=5.0, breakpoints=[10.0], marginal_prices=[1.0, 0.5]),
        ):
            assert t.session_price(0.0) == 0.0

    def test_power_law_exponent_one_equals_linear(self):
        p = PowerLawTariff(base=3.0, unit=0.2, exponent=1.0)
        l = LinearTariff(base=3.0, unit=0.2)
        for e in (0.0, 1.0, 17.5, 400.0):
            assert p.session_price(e) == pytest.approx(l.session_price(e))

    def test_power_law_subadditive_volume(self):
        t = PowerLawTariff(base=0.0, unit=1.0, exponent=0.7)
        assert t.volume_charge(200.0) < 2 * t.volume_charge(100.0)

    def test_merging_sessions_saves_at_least_one_base_fee(self):
        # price(E1+E2) <= price(E1) + price(E2) - base, the cooperation lemma.
        for t in (
            LinearTariff(base=7.0, unit=0.3),
            PowerLawTariff(base=7.0, unit=0.3, exponent=0.8),
        ):
            e1, e2 = 120.0, 310.0
            merged = t.session_price(e1 + e2)
            separate = t.session_price(e1) + t.session_price(e2)
            assert merged <= separate - t.base + 1e-12

    def test_piecewise_brackets(self):
        t = PiecewiseConcaveTariff(
            base=1.0, breakpoints=[10.0, 20.0], marginal_prices=[2.0, 1.0, 0.5]
        )
        assert t.volume_charge(5.0) == pytest.approx(10.0)
        assert t.volume_charge(10.0) == pytest.approx(20.0)
        assert t.volume_charge(15.0) == pytest.approx(25.0)
        assert t.volume_charge(30.0) == pytest.approx(35.0)

    def test_piecewise_validation(self):
        with pytest.raises(ConfigurationError):
            PiecewiseConcaveTariff(base=0.0, breakpoints=[10.0], marginal_prices=[1.0])
        with pytest.raises(ConfigurationError):
            PiecewiseConcaveTariff(base=0.0, breakpoints=[10.0, 5.0], marginal_prices=[1, 1, 1])
        with pytest.raises(ConfigurationError):
            # increasing marginal prices = convex, rejected
            PiecewiseConcaveTariff(base=0.0, breakpoints=[10.0], marginal_prices=[1.0, 2.0])

    def test_power_law_validation(self):
        with pytest.raises(ConfigurationError):
            PowerLawTariff(base=-1.0, unit=1.0)
        with pytest.raises(ConfigurationError):
            PowerLawTariff(base=1.0, unit=1.0, exponent=1.5)
        with pytest.raises(ConfigurationError):
            PowerLawTariff(base=1.0, unit=1.0, exponent=0.0)

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            LinearTariff(base=1.0, unit=1.0).session_price(-1.0)

    @pytest.mark.parametrize(
        "tariff",
        [
            LinearTariff(base=2.0, unit=0.5),
            PowerLawTariff(base=2.0, unit=0.5, exponent=0.6),
            PiecewiseConcaveTariff(base=2.0, breakpoints=[50.0], marginal_prices=[1.0, 0.2]),
        ],
    )
    def test_concavity_checker_accepts_concave(self, tariff):
        assert is_concave_nondecreasing(tariff, e_max=1000.0)

    def test_concavity_checker_rejects_convex(self):
        class ConvexTariff:
            base = 1.0

            def volume_charge(self, energy):
                return energy**2

            def session_price(self, energy):
                return self.base + self.volume_charge(energy)

        assert not is_concave_nondecreasing(ConvexTariff(), e_max=10.0)

    def test_tariff_protocol(self):
        assert isinstance(LinearTariff(base=1.0, unit=1.0), Tariff)


class TestCharger:
    def make(self, **kw):
        defaults = dict(
            charger_id="c", position=Point(0, 0),
            tariff=LinearTariff(base=10.0, unit=0.1),
            efficiency=0.5, transmit_power=5.0, capacity=3,
        )
        defaults.update(kw)
        return Charger(**defaults)

    def test_emitted_energy_scales_by_efficiency(self):
        c = self.make(efficiency=0.5)
        assert c.emitted_energy([100.0, 50.0]) == pytest.approx(300.0)

    def test_session_price_uses_emitted_energy(self):
        c = self.make(efficiency=0.5)
        # emitted = 300, price = 10 + 0.1*300
        assert c.session_price([100.0, 50.0]) == pytest.approx(40.0)

    def test_empty_session_free(self):
        assert self.make().session_price([]) == 0.0

    def test_session_duration(self):
        c = self.make(efficiency=0.5, transmit_power=10.0)
        assert c.session_duration([100.0]) == pytest.approx(20.0)

    def test_capacity_admission(self):
        c = self.make(capacity=2)
        assert c.admits(0) and c.admits(2)
        assert not c.admits(3)

    def test_unbounded_capacity(self):
        c = self.make(capacity=None)
        assert c.admits(10_000)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self.make(efficiency=0.0)
        with pytest.raises(ConfigurationError):
            self.make(efficiency=1.1)
        with pytest.raises(ConfigurationError):
            self.make(transmit_power=0.0)
        with pytest.raises(ConfigurationError):
            self.make(capacity=0)
        with pytest.raises(ConfigurationError):
            self.make(charger_id="")

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            self.make().emitted_energy([10.0, -1.0])

    def test_negative_group_size_rejected(self):
        with pytest.raises(ValueError):
            self.make().admits(-1)


class TestServiceDiscipline:
    def make(self, discipline, **kw):
        defaults = dict(
            charger_id="c", position=Point(0, 0),
            tariff=LinearTariff(base=10.0, unit=0.1),
            efficiency=0.5, transmit_power=10.0,
            service_discipline=discipline,
        )
        defaults.update(kw)
        return Charger(**defaults)

    def test_sequential_duration_is_sum(self):
        c = self.make("sequential")
        # emitted = (100+300)/0.5 = 800; /10 W = 80 s
        assert c.session_duration([100.0, 300.0]) == pytest.approx(80.0)

    def test_concurrent_duration_is_max(self):
        c = self.make("concurrent")
        # slowest member: 300/0.5 = 600 emitted; /10 W = 60 s
        assert c.session_duration([100.0, 300.0]) == pytest.approx(60.0)

    def test_concurrent_never_slower_than_sequential(self):
        seq = self.make("sequential")
        con = self.make("concurrent")
        for demands in ([50.0], [100.0, 100.0], [10.0, 200.0, 30.0]):
            assert con.session_duration(demands) <= seq.session_duration(demands)

    def test_disciplines_agree_on_singletons(self):
        seq = self.make("sequential")
        con = self.make("concurrent")
        assert con.session_duration([123.0]) == pytest.approx(
            seq.session_duration([123.0])
        )

    def test_pricing_unaffected_by_discipline(self):
        seq = self.make("sequential")
        con = self.make("concurrent")
        assert con.session_price([100.0, 300.0]) == pytest.approx(
            seq.session_price([100.0, 300.0])
        )

    def test_empty_session_zero_duration(self):
        assert self.make("concurrent").session_duration([]) == 0.0

    def test_unknown_discipline_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make("simultaneous-ish")

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            self.make("concurrent").session_duration([10.0, -1.0])

    def test_concurrent_pad_shortens_simulated_makespan(self):
        from repro.core import ccsa as _ccsa
        from repro.sim import FieldTrialConfig, NoiseModel, execute_round
        from repro.workloads import testbed_instance as make_testbed
        import dataclasses

        inst = make_testbed(rng=3)
        fast_chargers = [
            dataclasses.replace(c, service_discipline="concurrent")
            for c in inst.chargers
        ]
        fast = type(inst)(
            devices=list(inst.devices), chargers=fast_chargers,
            mobility=inst.mobility, field_area=inst.field_area,
        )
        sched = _ccsa(inst)
        cfg = FieldTrialConfig(rounds=1, seed=1, noise=NoiseModel.noiseless())
        slow_outcome = execute_round(inst, sched, cfg, 0)
        fast_outcome = execute_round(fast, _ccsa(fast), cfg, 0)
        assert fast_outcome.makespan < slow_outcome.makespan
