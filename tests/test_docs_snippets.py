"""Executable versions of the docs/API.md snippets.

Documentation that doesn't run is worse than none; this module keeps the
API guide honest by exercising each documented call pattern.
"""

from __future__ import annotations

import pytest

from repro import (
    CCSInstance,
    Charger,
    Device,
    EgalitarianSharing,
    Point,
    PowerLawTariff,
    ProportionalSharing,
    ccsa,
    ccsga,
    comprehensive_cost,
    member_costs,
    noncooperation,
    optimal_schedule,
    quick_instance,
    validate_schedule,
)
from repro.core import improve_schedule, lower_bound


@pytest.fixture
def doc_instance():
    devices = [
        Device("d0", Point(0, 0), demand=15e3, moving_rate=0.05, speed=1.5),
        Device("d1", Point(40, 10), demand=22e3, moving_rate=0.05),
    ]
    chargers = [
        Charger(
            "c0", Point(20, 20),
            tariff=PowerLawTariff(base=30.0, unit=2e-3, exponent=0.9),
            efficiency=0.8, transmit_power=5.0, capacity=6,
        ),
    ]
    return CCSInstance(devices=devices, chargers=chargers)


class TestBuildingSnippet:
    def test_cost_primitives(self, doc_instance):
        assert doc_instance.moving_cost(0, 0) > 0
        assert doc_instance.charging_price([0, 1], 0) > 0
        assert doc_instance.group_cost([0, 1], 0) > doc_instance.charging_price([0, 1], 0)
        assert doc_instance.standalone_cost(0) > 0

    def test_workloads_snippet(self):
        from repro.workloads import generate_instance, scenario

        spec = scenario("large").with_(capacity=None)
        inst = generate_instance(spec, seed=42)
        assert inst.capacity_of(0) is None


class TestSolvingSnippet:
    def test_all_documented_solvers(self, doc_instance):
        sched = ccsa(doc_instance)
        fast = ccsa(doc_instance, max_candidates=16)
        result = ccsga(doc_instance)
        solo = noncooperation(doc_instance)
        opt = optimal_schedule(doc_instance)
        best = improve_schedule(sched, doc_instance)
        bound = lower_bound(doc_instance).total
        for s in (sched, fast, result.schedule, solo, opt, best):
            validate_schedule(s, doc_instance)
        assert bound <= comprehensive_cost(opt, doc_instance) + 1e-9
        assert result.nash_certified

    def test_sharing_snippet(self, doc_instance):
        sched = ccsa(doc_instance)
        bills = member_costs(sched, doc_instance, ProportionalSharing())
        assert sum(bills.values()) == pytest.approx(
            comprehensive_cost(sched, doc_instance)
        )


class TestGameSnippet:
    def test_equilibrium_api(self, doc_instance):
        from repro.game import (
            CoalitionStructure,
            SociallyAwareSwitch,
            equilibrium_quality,
            is_nash_equilibrium,
        )

        sched = ccsga(doc_instance).schedule
        cs = CoalitionStructure.from_schedule(
            doc_instance, EgalitarianSharing(), sched
        )
        assert is_nash_equilibrium(cs, SociallyAwareSwitch())
        q = equilibrium_quality(doc_instance, samples=3)
        assert q.baseline in ("optimal", "lower-bound")

    def test_incremental_engine_api(self, doc_instance):
        from repro.core.costsharing import share_from_aggregates
        from repro.game import CoalitionStructure, SelfishSwitch, SociallyAwareSwitch

        cs = CoalitionStructure.singletons(doc_instance, EgalitarianSharing())
        cs.check_invariants()
        assert isinstance(cs.zobrist_hash(), int)
        c = cs.coalition_of(0)
        assert share_from_aggregates(
            cs.scheme, doc_instance, 0, c.size, c.total_demand, c.price
        ) == pytest.approx(c.price / c.size)
        assert SociallyAwareSwitch.has_potential and not SelfishSwitch.has_potential


class TestSimSnippet:
    def test_field_trial_api(self):
        from repro.sim import FieldTrialConfig, compare_field_trial, paired_improvements

        cfg = FieldTrialConfig(rounds=2, seed=3, outage_prob=0.1)
        res = compare_field_trial({"CCSA": ccsa, "NCA": noncooperation}, cfg)
        imps = paired_improvements(res["NCA"], res["CCSA"])
        assert len(imps) == 2

    def test_lifecycle_api(self):
        from repro.sim import LifecycleConfig, run_lifecycle

        life = run_lifecycle(ccsa, LifecycleConfig(epochs=6, seed=0))
        assert life.survival_rate <= 1.0
        assert len(life.requests_per_epoch) == 6


class TestOnlineMarketPlanningSnippets:
    def test_online_api(self):
        from repro.geometry import Field
        from repro.online import GreedyDispatch, compare_policies, poisson_arrivals

        field = Field.square(300.0)
        inst = quick_instance(5, 3, seed=1)
        arrivals = poisson_arrivals(12, rate=1 / 30, field=field, rng=0)
        out = compare_policies(
            {"greedy": GreedyDispatch(window=120.0)}, arrivals, inst.chargers
        )
        assert out["greedy"].competitive_ratio > 0

    def test_market_api(self):
        from repro.market import CompetitionConfig, best_response_competition

        inst = quick_instance(8, 2, seed=2, heterogeneous_prices=False)
        comp = best_response_competition(inst, CompetitionConfig(max_rounds=2))
        assert len(comp.final_prices) == 2

    def test_planning_api(self, doc_instance):
        from repro.geometry import Field
        from repro.planning import candidate_sites, greedy_placement

        placed = greedy_placement(
            list(doc_instance.devices),
            candidate_sites(Field.square(100.0), 3),
            k=2,
            prototype=doc_instance.chargers[0],
        )
        assert len(placed.chargers) == 2


class TestNumericLintSnippet:
    def test_numeric_api(self):
        from repro.numeric import DEFAULT_REL_TOL, EXACT_ONE, is_exact, is_exact_zero, isclose

        assert is_exact_zero(0.0) and not is_exact_zero(1e-300)
        assert is_exact(1.0, EXACT_ONE)
        assert isclose(1.0, 1.0 + DEFAULT_REL_TOL / 2)

    def test_lint_api(self):
        from repro.lint import analyze_source

        report = analyze_source("import random\n", "snippet.py", module="repro/sim/noise.py")
        rendered = [f.render() for f in report.findings]
        assert rendered and rendered[0].startswith("snippet.py:1:1: CCS001")


class TestExperimentsIoStatsSnippets:
    def test_experiments_api(self):
        from repro.experiments import ascii_plot, fig12_ablation_tariff, render_series

        fig = fig12_ablation_tariff(exponents=(0.8, 1.0), trials=1)
        assert "Fig 12" in render_series(fig)
        assert "|" in ascii_plot(fig)

    def test_io_api(self, tmp_path, doc_instance):
        from repro.io import load_instance, load_schedule, save_instance, save_schedule

        sched = ccsa(doc_instance)
        save_instance(doc_instance, str(tmp_path / "i.json"))
        save_schedule(sched, doc_instance, str(tmp_path / "s.json"))
        inst = load_instance(str(tmp_path / "i.json"))
        assert load_schedule(str(tmp_path / "s.json"), inst).canonical() == sched.canonical()

    def test_stats_api(self):
        from repro.stats import mean_ci, paired_t_test

        ci = mean_ci([1.0, 2.0, 3.0])
        assert ci.low <= ci.mean <= ci.high
        # Non-constant differences keep scipy's moment calculation happy.
        t = paired_t_test([5.0, 6.0, 7.0], [4.2, 4.9, 6.1])
        assert t.mean_difference == pytest.approx(0.9333, abs=1e-3)
