"""Property-based tests (hypothesis) for the submodular toolkit."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.submodular import (
    SetFunction,
    concave_of_modular,
    densest_subset,
    is_submodular,
    lovasz_extension,
    minimize,
    minimize_brute_force,
    modular,
    powerset,
)

weights_strategy = st.lists(
    st.floats(min_value=0.05, max_value=5.0, allow_nan=False), min_size=1, max_size=7
)
signed_weights = st.lists(
    st.floats(min_value=-3.0, max_value=3.0, allow_nan=False), min_size=1, max_size=7
)
exponent_strategy = st.floats(min_value=0.3, max_value=1.0)
base_strategy = st.floats(min_value=0.0, max_value=10.0)


def ccs_cost(weights, shifts, base, exponent):
    """The CCS group-cost shape: base + concave(weighted sum) + modular."""
    n = len(weights)

    def fn(s):
        if not s:
            return 0.0
        return (
            base
            + sum(weights[i] for i in s) ** exponent
            + sum(shifts[i] for i in s)
        )

    return SetFunction(n, fn)


class TestStructuralSubmodularity:
    @settings(max_examples=40, deadline=None)
    @given(weights=weights_strategy, exponent=exponent_strategy, base=base_strategy)
    def test_ccs_cost_is_always_submodular(self, weights, exponent, base):
        shifts = [0.1 * (i + 1) for i in range(len(weights))]
        assert is_submodular(ccs_cost(weights, shifts, base, exponent))

    @settings(max_examples=30, deadline=None)
    @given(weights=weights_strategy, exponent=exponent_strategy)
    def test_concave_of_modular_is_submodular(self, weights, exponent):
        f = concave_of_modular(weights, lambda x: x**exponent)
        assert is_submodular(f)

    @settings(max_examples=30, deadline=None)
    @given(weights=signed_weights)
    def test_modular_is_submodular(self, weights):
        assert is_submodular(modular(weights))


class TestSFMCorrectness:
    @settings(max_examples=30, deadline=None)
    @given(
        weights=weights_strategy,
        exponent=exponent_strategy,
        base=base_strategy,
        shift_scale=st.floats(min_value=0.0, max_value=3.0),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_wolfe_matches_brute_force(self, weights, exponent, base, shift_scale, seed):
        rng = np.random.default_rng(seed)
        shifts = list(rng.uniform(-shift_scale, shift_scale, len(weights)))
        f = ccs_cost(weights, shifts, base, exponent)
        r = minimize(f)
        ref = minimize_brute_force(f)
        assert r.value == pytest.approx(ref.value, abs=1e-5)

    @settings(max_examples=30, deadline=None)
    @given(weights=signed_weights)
    def test_modular_minimizer_is_negative_support(self, weights):
        r = minimize(modular(weights))
        expected = sum(w for w in weights if w < 0)
        assert r.value == pytest.approx(expected, abs=1e-9)


class TestLovasz:
    @settings(max_examples=30, deadline=None)
    @given(
        weights=weights_strategy,
        exponent=exponent_strategy,
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_extension_convex_along_random_segments(self, weights, exponent, seed):
        f = concave_of_modular(weights, lambda x: x**exponent)
        rng = np.random.default_rng(seed)
        x = rng.uniform(0, 1, f.n)
        y = rng.uniform(0, 1, f.n)
        mid = lovasz_extension(f, (x + y) / 2)
        avg = 0.5 * (lovasz_extension(f, x) + lovasz_extension(f, y))
        assert mid <= avg + 1e-8

    @settings(max_examples=20, deadline=None)
    @given(weights=weights_strategy, exponent=exponent_strategy)
    def test_extension_agrees_on_vertices(self, weights, exponent):
        f = concave_of_modular(weights, lambda x: x**exponent)
        for s in powerset(f.n):
            x = [1.0 if i in s else 0.0 for i in range(f.n)]
            assert lovasz_extension(f, x) == pytest.approx(f(s), abs=1e-9)


class TestDensity:
    @settings(max_examples=25, deadline=None)
    @given(
        weights=weights_strategy,
        base=st.floats(min_value=0.5, max_value=20.0),
        exponent=exponent_strategy,
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_density_result_is_global_minimum(self, weights, base, exponent, seed):
        rng = np.random.default_rng(seed)
        shifts = list(rng.uniform(0.05, 2.0, len(weights)))
        f = ccs_cost(weights, shifts, base, exponent)
        res = densest_subset(f)
        brute = min(f(s) / len(s) for s in powerset(f.n) if s)
        assert res.density == pytest.approx(brute, abs=1e-6)
