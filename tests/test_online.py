"""Tests for the online scheduling extension."""

from __future__ import annotations

import pytest

from repro.core import validate_schedule
from repro.errors import ConfigurationError
from repro.geometry import Field, grid_deployment
from repro.online import (
    Arrival,
    BatchScheduler,
    GreedyDispatch,
    compare_policies,
    evaluate_policy,
    poisson_arrivals,
)
from repro.wpt import Charger, PowerLawTariff

FIELD = Field.square(300.0)


def make_chargers(m=4, capacity=6):
    return [
        Charger(
            f"c{j}", p,
            tariff=PowerLawTariff(base=30.0, unit=2e-3, exponent=0.9),
            efficiency=0.8, capacity=capacity,
        )
        for j, p in enumerate(grid_deployment(FIELD, m))
    ]


def make_arrivals(n=30, rate=1 / 30.0, seed=3):
    return poisson_arrivals(n, rate=rate, field=FIELD, rng=seed)


class TestArrivals:
    def test_count_and_ordering(self):
        arrivals = make_arrivals(25)
        assert len(arrivals) == 25
        times = [a.time for a in arrivals]
        assert times == sorted(times)
        assert all(t > 0 for t in times)

    def test_positions_in_field_and_ids_unique(self):
        arrivals = make_arrivals(25)
        assert all(FIELD.contains(a.device.position) for a in arrivals)
        ids = [a.device.device_id for a in arrivals]
        assert len(set(ids)) == len(ids)

    def test_seeded(self):
        a = make_arrivals(10, seed=9)
        b = make_arrivals(10, seed=9)
        assert [x.time for x in a] == [x.time for x in b]

    def test_mean_interarrival_matches_rate(self):
        arrivals = poisson_arrivals(4000, rate=0.5, field=FIELD, rng=0)
        mean_gap = arrivals[-1].time / len(arrivals)
        assert mean_gap == pytest.approx(2.0, rel=0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            poisson_arrivals(-1, rate=1.0, field=FIELD)
        with pytest.raises(ConfigurationError):
            poisson_arrivals(5, rate=0.0, field=FIELD)


class TestPolicies:
    @pytest.mark.parametrize(
        "policy", [GreedyDispatch(window=120.0), BatchScheduler(window=120.0)],
        ids=["greedy", "batch"],
    )
    def test_produces_feasible_schedule(self, policy):
        schedule, instance = policy.run(make_arrivals(30), make_chargers())
        validate_schedule(schedule, instance)
        assert instance.n_devices == 30

    @pytest.mark.parametrize(
        "policy_cls", [GreedyDispatch, BatchScheduler], ids=["greedy", "batch"]
    )
    def test_deterministic(self, policy_cls):
        a, _ = policy_cls(window=100.0).run(make_arrivals(20), make_chargers())
        b, _ = policy_cls(window=100.0).run(make_arrivals(20), make_chargers())
        assert a.canonical() == b.canonical()

    def test_greedy_respects_capacity(self):
        schedule, instance = GreedyDispatch(window=1e9).run(
            make_arrivals(30), make_chargers(capacity=2)
        )
        assert max(s.size for s in schedule.sessions) <= 2

    def test_tiny_window_forces_singletons(self):
        # Sessions depart immediately: nobody can ever join.
        schedule, _ = GreedyDispatch(window=1e-9).run(
            make_arrivals(15), make_chargers()
        )
        assert all(s.size == 1 for s in schedule.sessions)

    def test_infinite_window_allows_grouping(self):
        schedule, _ = GreedyDispatch(window=1e12).run(
            make_arrivals(15), make_chargers()
        )
        assert any(s.size > 1 for s in schedule.sessions)

    def test_batch_groups_within_windows(self):
        schedule, _ = BatchScheduler(window=600.0).run(
            make_arrivals(20, rate=1.0), make_chargers()
        )
        assert any(s.size > 1 for s in schedule.sessions)

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigurationError):
            GreedyDispatch(window=0.0)
        with pytest.raises(ConfigurationError):
            BatchScheduler(window=-1.0)

    def test_empty_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            GreedyDispatch().run([], make_chargers())


class TestHarness:
    def test_competitive_ratio_at_least_one_ish(self):
        # The clairvoyant solver sees everything, so online can't beat it
        # by more than CCSA's own suboptimality.
        out = evaluate_policy(
            GreedyDispatch(window=120.0), make_arrivals(30), make_chargers()
        )
        assert out.competitive_ratio >= 0.95
        assert out.competitive_ratio <= 2.5

    def test_compare_runs_same_stream(self):
        out = compare_policies(
            {
                "greedy": GreedyDispatch(window=120.0),
                "batch": BatchScheduler(window=120.0),
            },
            make_arrivals(25),
            make_chargers(),
        )
        assert set(out) == {"greedy", "batch"}
        # Identical clairvoyant baseline because the instance is identical.
        assert out["greedy"].offline_cost == pytest.approx(out["batch"].offline_cost)

    def test_batch_with_huge_window_matches_offline(self):
        # One batch containing everything *is* the offline solver.
        out = evaluate_policy(
            BatchScheduler(window=1e12), make_arrivals(20), make_chargers()
        )
        assert out.competitive_ratio == pytest.approx(1.0)

    def test_service_daemon_runs_under_the_harness(self):
        # The charging-service kernel, adapted as an online policy, is
        # feasible and competitive on the same footing as the schedulers.
        from repro.service import ServicePolicy

        out = evaluate_policy(ServicePolicy(), make_arrivals(25), make_chargers())
        assert out.policy == "online-service"
        assert 0.95 <= out.competitive_ratio <= 2.5

    def test_zero_offline_cost_does_not_divide_by_zero(self):
        # Regression: a degenerate free instance used to raise
        # ZeroDivisionError; now 0/0 reads as "matched the optimum" and
        # anything/0 as unbounded regret.
        from repro.online.harness import OnlineOutcome

        free = OnlineOutcome(policy="p", online_cost=0.0, offline_cost=0.0, n_sessions=1)
        assert free.competitive_ratio == 1.0
        worse = OnlineOutcome(policy="p", online_cost=3.0, offline_cost=0.0, n_sessions=1)
        assert worse.competitive_ratio == float("inf")
