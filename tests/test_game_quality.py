"""Tests for the price-of-anarchy / price-of-stability analysis."""

from __future__ import annotations

import pytest

from repro.core import ccsga, comprehensive_cost, optimal_schedule
from repro.game import EquilibriumQuality, equilibrium_quality, sample_equilibria
from repro.workloads import quick_instance


@pytest.fixture
def inst():
    return quick_instance(n_devices=10, n_chargers=3, seed=21, capacity=5)


class TestSampleEquilibria:
    def test_all_samples_are_certified(self, inst):
        costs = sample_equilibria(inst, samples=5, seed=1)
        assert len(costs) == 5
        assert all(c > 0 for c in costs)

    def test_deterministic_for_seed(self, inst):
        a = sample_equilibria(inst, samples=4, seed=7)
        b = sample_equilibria(inst, samples=4, seed=7)
        assert a == b

    def test_random_orders_can_find_different_equilibria(self, inst):
        costs = sample_equilibria(inst, samples=10, seed=1)
        assert len(set(round(c, 6) for c in costs)) > 1

    def test_samples_validation(self, inst):
        with pytest.raises(ValueError):
            sample_equilibria(inst, samples=0)


class TestEquilibriumQuality:
    def test_poa_at_least_pos_at_least_one_vs_optimal(self, inst):
        q = equilibrium_quality(inst, samples=8, seed=1)
        assert q.baseline == "optimal"
        assert q.price_of_anarchy >= q.price_of_stability >= 1.0 - 1e-9

    def test_every_sampled_ne_at_least_optimal(self, inst):
        q = equilibrium_quality(inst, samples=6, seed=2)
        opt = comprehensive_cost(optimal_schedule(inst), inst)
        assert all(c >= opt - 1e-7 for c in q.ne_costs)
        assert q.baseline_cost == pytest.approx(opt)

    def test_large_instance_uses_lower_bound(self):
        big = quick_instance(n_devices=30, n_chargers=4, seed=3, capacity=6)
        q = equilibrium_quality(big, samples=2, seed=1, exact_limit=14)
        assert q.baseline == "lower-bound"
        assert q.price_of_anarchy >= 1.0  # NE cost can't beat a valid LB

    def test_spread_consistency(self, inst):
        q = equilibrium_quality(inst, samples=8, seed=1)
        assert q.spread >= 0
        assert q.spread == pytest.approx(
            (max(q.ne_costs) - min(q.ne_costs)) / min(q.ne_costs)
        )


class TestRandomizedCCSGA:
    def test_rng_ccsga_still_certifies(self, inst):
        run = ccsga(inst, rng=5)
        assert run.nash_certified
        assert run.trace.is_strictly_decreasing()

    def test_default_order_unchanged(self, inst):
        a = ccsga(inst)
        b = ccsga(inst)
        assert a.schedule.canonical() == b.schedule.canonical()
