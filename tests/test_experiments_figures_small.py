"""Small-scale direct tests for figure builders only exercised by benches."""

from __future__ import annotations

import pytest

from repro.experiments import (
    FIGURE_BUILDERS,
    fig6_cost_vs_chargers,
    fig8_cost_vs_field_side,
    fig12_ablation_capacity,
)
from repro.market import CompetitionConfig, best_response_competition
from repro.workloads import quick_instance


class TestFigureBuilders:
    def test_fig6_more_chargers_never_hurt_endpoints(self):
        res = fig6_cost_vs_chargers(values=(2, 9), trials=2, seed=1)
        for label in ("NCA", "CCSA"):
            assert res.series[label][1] <= res.series[label][0] + 1e-9

    def test_fig8_costs_grow_with_field(self):
        res = fig8_cost_vs_field_side(values=(100.0, 800.0), trials=2, seed=1)
        for label in ("NCA", "CCSA"):
            assert res.series[label][1] > res.series[label][0]

    def test_fig12_capacity_one_means_no_cooperation(self):
        res = fig12_ablation_capacity(capacities=(1, 4), trials=2, seed=1)
        assert res.series["CCSA saving %"][0] == pytest.approx(0.0, abs=1e-9)
        assert res.series["mean group size"][0] == pytest.approx(1.0)
        assert res.series["CCSA saving %"][1] > 10.0

    def test_figure_builder_registry_complete(self):
        assert set(FIGURE_BUILDERS) == {f"fig{i}" for i in range(5, 13)}


class TestMarketEdgeCases:
    def test_monopoly_single_charger(self):
        # One operator, no competition: the dynamics still run; a monopolist
        # never *lowers* its fee below the revenue-maximizing candidate.
        inst = quick_instance(
            n_devices=10, n_chargers=1, seed=5,
            heterogeneous_prices=False, base_price=30.0,
        )
        res = best_response_competition(
            inst, CompetitionConfig(candidate_bases=(0.0, 30.0, 60.0), max_rounds=4)
        )
        assert res.converged
        assert len(res.final_prices) == 1
        # Captive demand: the monopolist's revenue at the final price is at
        # least its revenue at any other tested price in the last round.
        assert res.final_revenues[0] > 0

    def test_competition_history_lengths_consistent(self):
        inst = quick_instance(
            n_devices=8, n_chargers=2, seed=6, heterogeneous_prices=False
        )
        res = best_response_competition(inst, CompetitionConfig(max_rounds=3))
        n = len(res.price_history)
        assert len(res.revenue_history) == n
        assert len(res.consumer_cost_history) == n
        assert n >= 2  # initial snapshot + at least one round
