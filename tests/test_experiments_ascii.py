"""Tests for the ASCII figure renderer and its CLI integration."""

from __future__ import annotations


import pytest

from repro.cli import main
from repro.experiments import SeriesResult, ascii_plot


def demo_series():
    s = SeriesResult("f", "Demo chart", "n", [10, 20, 40])
    s.add("NCA", [500.0, 1000.0, 2000.0])
    s.add("CCSA", [250.0, 500.0, 1000.0])
    return s


class TestAsciiPlot:
    def test_contains_title_legend_and_bounds(self):
        text = ascii_plot(demo_series())
        assert "Demo chart" in text
        assert "o NCA" in text and "x CCSA" in text
        assert "2000" in text and "250" in text
        assert "10" in text and "40" in text

    def test_canvas_dimensions(self):
        text = ascii_plot(demo_series(), width=40, height=8)
        plot_lines = [l for l in text.splitlines() if "|" in l]
        assert len(plot_lines) == 8
        assert all(len(l.split("|", 1)[1]) <= 40 for l in plot_lines)

    def test_nan_series_skipped(self):
        s = demo_series()
        s.add("OPT", [300.0, float("nan"), float("nan")])
        text = ascii_plot(s)
        assert "+ OPT" in text  # legend still lists it
        # exactly one '+' plotted (the finite point)
        canvas = "".join(l.split("|", 1)[1] for l in text.splitlines() if "|" in l)
        assert canvas.count("+") == 1

    def test_all_nan_raises(self):
        s = SeriesResult("f", "t", "x", [1, 2])
        s.add("a", [float("nan")] * 2)
        with pytest.raises(ValueError):
            ascii_plot(s)

    def test_empty_series_raises(self):
        with pytest.raises(ValueError):
            ascii_plot(SeriesResult("f", "t", "x", [1]))

    def test_tiny_canvas_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot(demo_series(), width=4, height=2)

    def test_constant_series_plot(self):
        s = SeriesResult("f", "flat", "x", [1, 2, 3])
        s.add("a", [5.0, 5.0, 5.0])
        text = ascii_plot(s)
        assert "flat" in text


class TestCliPlotFlag:
    def test_plot_flag_renders_chart(self, capsys):
        assert main(["fig12", "--trials", "1", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "|" in out  # chart canvas
        assert "CCSA saving %" in out

    def test_plot_flag_ignored_for_tables(self, capsys):
        assert main(["table1", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
