# Development entry points.  All targets assume the repo root as cwd and
# use the src/ layout without installation.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

# Worker processes for experiment tasks (see docs/EXECUTION.md); results
# are identical at any level.  Example: make run-all JOBS=4
JOBS ?= 1
# Task-result cache directory used by run-all (re-runs resume from it).
CACHE_DIR ?= .ccs-bench-cache

.PHONY: test lint lint-flow typecheck bench bench-smoke bench-hotpath bench-large bench-exec bench-service bench-shard bench-recovery golden golden-experiments run-all serve-smoke chaos-smoke chaos shard-smoke recovery-smoke

# Tier-1 gate: the full unit/property/golden suite.
test:
	$(PYTHON) -m pytest -x -q

# Domain-aware static analysis: determinism / numeric / state-discipline
# invariants (see docs/LINTING.md).  Exit 0 means no unbaselined findings.
# Runs all rules — per-file (CCS001–CCS008) and whole-program
# (CCS009–CCS012, docs/DETERMINISM.md) — over the full analyzed scope.
lint:
	$(PYTHON) -m repro.lint src benchmarks examples

# Same analysis with the CI wall-time budget enforced: the whole-program
# pass (parse + call graph + purity + taint, 170+ files) must stay under
# 10 seconds so it can gate every push.
lint-flow:
	$(PYTHON) -m repro.lint src benchmarks examples --time-budget 10

# Static types.  Permissive by default with a strict core (pyproject
# [tool.mypy]); requires mypy (pip install mypy) — CI always runs it.
typecheck:
	$(PYTHON) -m mypy

# Quick wall-time regression guard for the CCSGA hot path (also part of
# the tier-1 suite via the bench_smoke marker).  Fails only on a >3x
# regression against the budget recorded in benchmarks/BENCH_ccsga.json.
bench-smoke:
	$(PYTHON) -m pytest -q -m bench_smoke tests/test_bench_smoke.py

# Re-measure the hot path (both engines, n <= 800) and rewrite
# benchmarks/BENCH_ccsga.json, keeping the checked-in large-case numbers.
bench-hotpath:
	$(PYTHON) benchmarks/bench_core_hotpath.py --skip-large

# Full hot-path re-measurement including the array-engine large cases
# (n = 5,000 / 20,000 / 50,000; the object engine is capped at n <= 800).
bench-large:
	$(PYTHON) benchmarks/bench_core_hotpath.py

# The full experiment-reproduction benchmark suite (figures + tables).
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# The whole evaluation through the task executor: parallel with JOBS>1,
# resumable from CACHE_DIR if interrupted.
run-all:
	$(PYTHON) -m repro.cli --all --trials 3 --jobs $(JOBS) --cache-dir $(CACHE_DIR)

# Measure the execution subsystem (serial vs parallel vs cache replay)
# and rewrite benchmarks/BENCH_exec.json.
bench-exec:
	$(PYTHON) benchmarks/bench_exec.py --jobs $(if $(filter 1,$(JOBS)),4,$(JOBS))

# Measure the service daemon (throughput + submit latency) and rewrite
# benchmarks/BENCH_service.json.
bench-service:
	$(PYTHON) benchmarks/bench_service.py

# Measure sharded-service scaling (shards in {1,2,4,8}) and rewrite
# benchmarks/BENCH_shard.json.
bench-shard:
	$(PYTHON) benchmarks/bench_shard.py

# Measure crash recovery (snapshot + suffix replay vs full replay) and
# rewrite benchmarks/BENCH_recovery.json.
bench-recovery:
	$(PYTHON) benchmarks/bench_recovery.py

# End-to-end daemon smoke: generated stream -> journal -> metrics, then
# crash-recover from the journal and verify byte-identical state.
serve-smoke:
	$(PYTHON) -m repro.service --n 200 --rate 0.5 --seed 7 \
		--journal .serve-smoke.jsonl --metrics-json .serve-smoke-metrics.json \
		--check-recovery
	rm -f .serve-smoke.jsonl .serve-smoke-metrics.json

# Fault-injection smoke (<30 s): a seeded fault plan — charger outages,
# cancellations, no-shows, and journal write failures that crash and
# recover the daemon mid-run — then verify recovery converges on the
# byte-identical journal (see docs/FAULTS.md).
chaos-smoke:
	$(PYTHON) -m repro.service --n 150 --rate 0.5 --seed 7 --chargers 4 \
		--journal .chaos-smoke.jsonl --fault-plan seed:13 --check-recovery
	rm -f .chaos-smoke.jsonl
	$(PYTHON) -m repro.service --n 150 --rate 0.5 --seed 7 --chargers 8 \
		--shards 4 --halo 12 --journal .chaos-smoke-shards \
		--fault-plan seed:13 --check-recovery
	rm -rf .chaos-smoke-shards
	$(PYTHON) -m repro.service --n 150 --rate 0.5 --seed 7 --chargers 8 \
		--shards 4 --halo 12 --journal .chaos-smoke-supervised \
		--snapshot-every 25 --fault-plan seed:13 --supervise --check-recovery
	rm -rf .chaos-smoke-supervised

# Self-healing smoke (tier-1 marker, <5 s): supervised chaos — shard
# kills, snapshot corruption, crash-looping recoveries — converging
# byte-identical with zero operator calls, then an end-to-end supervised
# daemon run recovered via --recover-only (see docs/RECOVERY.md).
recovery-smoke:
	$(PYTHON) -m pytest -q -m recovery_smoke tests/test_shard_supervisor.py
	$(PYTHON) -m repro.service --n 100 --rate 0.5 --seed 7 --chargers 8 \
		--shards 4 --halo 12 --journal .recovery-smoke \
		--snapshot-every 20 --fault-plan seed:3 --supervise
	$(PYTHON) -m repro.service --chargers 8 --shards 4 \
		--journal .recovery-smoke --recover-only
	rm -rf .recovery-smoke

# Sharded-service smoke (tier-1 marker): a 4-shard replay checked against
# the live facade plus the 1-shard byte-identity spot check, then an
# end-to-end sharded daemon run recovered from its journal directory.
shard-smoke:
	$(PYTHON) -m pytest -q -m shard_smoke tests/test_shard_smoke.py
	$(PYTHON) -m repro.service --n 150 --rate 0.5 --seed 7 --chargers 8 \
		--shards 4 --halo 12 --journal .shard-smoke --check-recovery
	rm -rf .shard-smoke

# The heavy randomized chaos suite (hundreds of hypothesis examples);
# excluded from tier-1 by the `chaos` marker.
chaos:
	$(PYTHON) -m pytest -q -m chaos tests/test_faults_chaos.py

# Regenerate the pinned CCSGA dynamics goldens (only after an intentional
# behaviour change to the game dynamics).
golden:
	$(PYTHON) tests/fixtures/capture_ccsga_golden.py

# Regenerate the pinned Table 2/3 evaluation goldens (only after an
# intentional behaviour change to the experiments or their seeds).
golden-experiments:
	$(PYTHON) tests/fixtures/capture_experiments_golden.py
