# Development entry points.  All targets assume the repo root as cwd and
# use the src/ layout without installation.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-smoke bench-hotpath golden

# Tier-1 gate: the full unit/property/golden suite.
test:
	$(PYTHON) -m pytest -x -q

# Quick wall-time regression guard for the CCSGA hot path (also part of
# the tier-1 suite via the bench_smoke marker).  Fails only on a >3x
# regression against the budget recorded in benchmarks/BENCH_ccsga.json.
bench-smoke:
	$(PYTHON) -m pytest -q -m bench_smoke tests/test_bench_smoke.py

# Re-measure the hot path and rewrite benchmarks/BENCH_ccsga.json.
bench-hotpath:
	$(PYTHON) benchmarks/bench_core_hotpath.py

# The full experiment-reproduction benchmark suite (figures + tables).
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Regenerate the pinned CCSGA dynamics goldens (only after an intentional
# behaviour change to the game dynamics).
golden:
	$(PYTHON) tests/fixtures/capture_ccsga_golden.py
