"""Setup shim for environments without the `wheel` package (offline installs).

`pip install -e .` needs bdist_wheel; when that is unavailable,
`python setup.py develop` installs the same editable package.
All project metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
