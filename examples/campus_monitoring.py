"""Large-scale scenario: a campus-wide mobile sensing fleet.

The paper motivates CCSGA with large deployments where the approximation
algorithm is too slow.  This example builds a 150-robot, 12-charger campus
(clustered around buildings), compares CCSA and CCSGA on cost *and*
wall-clock, and inspects the Nash equilibrium CCSGA converges to.

Run with::

    python examples/campus_monitoring.py
"""

import time

from repro import ProportionalSharing, ccsa, ccsga, comprehensive_cost, noncooperation
from repro.workloads import WorkloadSpec, generate_instance


def main() -> None:
    spec = WorkloadSpec(
        n_devices=150,
        n_chargers=12,
        side=800.0,
        device_layout="cluster",   # robots concentrate around buildings
        demand_model="lognormal",  # a few long-mission robots need much more
        capacity=8,
    )
    instance = generate_instance(spec, seed=42)
    print(instance.describe())
    print()

    t0 = time.perf_counter()
    nca = noncooperation(instance)
    t_nca = time.perf_counter() - t0

    t0 = time.perf_counter()
    greedy = ccsa(instance)
    t_ccsa = time.perf_counter() - t0

    t0 = time.perf_counter()
    game = ccsga(instance, scheme=ProportionalSharing())
    t_ccsga = time.perf_counter() - t0

    print(f"{'algorithm':<16} {'total cost':>12} {'wall-clock':>11} {'sessions':>9}")
    rows = [
        ("noncooperation", nca, t_nca),
        ("CCSA", greedy, t_ccsa),
        ("CCSGA", game.schedule, t_ccsga),
    ]
    for name, sched, secs in rows:
        cost = comprehensive_cost(sched, instance)
        print(f"{name:<16} {cost:>12.2f} {secs:>10.2f}s {sched.n_sessions:>9}")

    print()
    print(
        f"CCSGA converged in {game.switches} switches over {game.sweeps} sweeps; "
        f"pure Nash equilibrium certified: {game.nash_certified}"
    )
    print(
        f"Potential descended {game.trace.total_descent():.2f} "
        f"from {game.trace.initial:.2f} to {game.trace.final:.2f}"
    )
    sizes = game.schedule.group_sizes()
    print(f"Equilibrium coalition sizes: min {sizes[0]}, median {sizes[len(sizes)//2]}, "
          f"max {sizes[-1]} across {len(sizes)} sessions")


if __name__ == "__main__":
    main()
