"""The paper's field experiment on the simulated 5-charger / 8-node testbed.

Runs paired scheduling rounds (identical realized worlds per round) for
CCSA and the noncooperation baseline on the discrete-event testbed, with
travel noise, efficiency wobble, and metering error — then reports the
measured comprehensive costs and the improvement statistic the abstract
quotes (~42.9%).

Run with::

    python examples/field_testbed.py
"""

from repro.core import ccsa, noncooperation
from repro.sim import (
    FieldTrialConfig,
    compare_field_trial,
    paired_improvements,
    utilization_summary,
)


def main() -> None:
    config = FieldTrialConfig(rounds=10, seed=2021)
    results = compare_field_trial(
        {"CCSA": ccsa, "noncooperation": noncooperation}, config
    )
    ccsa_res = results["CCSA"]
    nca_res = results["noncooperation"]

    print("Measured comprehensive cost per round (5 chargers, 8 nodes):")
    print(f"{'round':>5} {'NCA':>10} {'CCSA':>10} {'improvement':>12}")
    improvements = paired_improvements(nca_res, ccsa_res)
    for r, (n_cost, c_cost, imp) in enumerate(
        zip(nca_res.round_costs, ccsa_res.round_costs, improvements)
    ):
        print(f"{r:>5} {n_cost:>10.2f} {c_cost:>10.2f} {imp:>11.1f}%")

    avg = sum(improvements) / len(improvements)
    print(f"\nCCSA beats noncooperation by {avg:.1f}% on average "
          f"(paper field experiment: ~42.9%).")

    print("\nCCSA trial summary:")
    for key, value in utilization_summary(ccsa_res).items():
        print(f"  {key}: {value:.2f}")


if __name__ == "__main__":
    main()
