"""Operator-side scenario: how tariff design shapes cooperation.

A charging-service operator chooses a tariff; devices respond by forming
coalitions (CCSGA).  This example sweeps the session base fee and the
volume-discount depth and reports how group sizes, operator revenue, and
device costs react — the economics the paper's service model is about.

Run with::

    python examples/tariff_design.py
"""

from repro import ccsga, comprehensive_cost, noncooperation
from repro.workloads import WorkloadSpec, generate_instance


def summarize(spec: WorkloadSpec, seed: int = 11):
    instance = generate_instance(spec, seed=seed)
    game = ccsga(instance, certify=False)
    coop_cost = comprehensive_cost(game.schedule, instance)
    solo_cost = comprehensive_cost(noncooperation(instance), instance)
    sizes = game.schedule.group_sizes()
    revenue = sum(
        instance.charging_price(s.members, s.charger) for s in game.schedule.sessions
    )
    return {
        "mean_group": sum(sizes) / len(sizes),
        "sessions": len(sizes),
        "device_saving_pct": 100.0 * (solo_cost - coop_cost) / solo_cost,
        "operator_revenue": revenue,
    }


def main() -> None:
    base = WorkloadSpec(n_devices=40, n_chargers=5, heterogeneous_prices=False)

    print("Sweep 1: session base fee (volume discount fixed at exponent 0.9)")
    print(f"{'base fee':>9} {'mean group':>11} {'sessions':>9} "
          f"{'device saving':>14} {'revenue':>10}")
    for fee in (0.0, 10.0, 30.0, 60.0, 100.0):
        s = summarize(base.with_(base_price=fee))
        print(f"{fee:>9.0f} {s['mean_group']:>11.2f} {s['sessions']:>9} "
              f"{s['device_saving_pct']:>13.1f}% {s['operator_revenue']:>10.1f}")

    print()
    print("Sweep 2: volume-discount depth (base fee fixed at 30)")
    print(f"{'exponent':>9} {'mean group':>11} {'sessions':>9} "
          f"{'device saving':>14} {'revenue':>10}")
    for alpha in (0.6, 0.7, 0.8, 0.9, 1.0):
        s = summarize(base.with_(tariff_exponent=alpha))
        print(f"{alpha:>9.1f} {s['mean_group']:>11.2f} {s['sessions']:>9} "
              f"{s['device_saving_pct']:>13.1f}% {s['operator_revenue']:>10.1f}")

    print()
    print("Reading: higher base fees and deeper discounts both push devices")
    print("into larger coalitions; the operator trades per-session revenue")
    print("for utilization, which is the cooperative-charging-as-a-service")
    print("business model the paper proposes.")


if __name__ == "__main__":
    main()
