"""Quickstart: schedule one round of cooperative charging.

Builds a small random deployment, runs the paper's two algorithms plus
the noncooperation baseline and the exact optimum, and prints what each
device pays under the egalitarian cost-sharing scheme.

Run with::

    python examples/quickstart.py
"""

from repro import (
    EgalitarianSharing,
    ccsa,
    ccsga,
    comprehensive_cost,
    member_costs,
    noncooperation,
    optimal_schedule,
    quick_instance,
)


def main() -> None:
    instance = quick_instance(n_devices=12, n_chargers=3, seed=7, capacity=5)
    print(instance.describe())
    print()

    schedules = {
        "noncooperation": noncooperation(instance),
        "CCSA": ccsa(instance),
        "CCSGA": ccsga(instance).schedule,
        "optimal": optimal_schedule(instance),
    }

    print(f"{'algorithm':<16} {'total cost':>12} {'sessions':>9} {'group sizes'}")
    for name, sched in schedules.items():
        cost = comprehensive_cost(sched, instance)
        print(f"{name:<16} {cost:>12.2f} {sched.n_sessions:>9} {sched.group_sizes()}")

    print()
    from repro.experiments import field_map

    print(field_map(instance, schedules["CCSA"], width=56, height=14))

    print()
    print("Per-device comprehensive cost under CCSA (egalitarian sharing):")
    costs = member_costs(schedules["CCSA"], instance, EgalitarianSharing())
    for i in sorted(costs):
        device = instance.devices[i]
        session = schedules["CCSA"].session_of(i)
        charger = instance.chargers[session.charger]
        alone = instance.standalone_cost(i)
        print(
            f"  {device.device_id}: pays {costs[i]:7.2f} at {charger.charger_id} "
            f"(group of {session.size}); alone it would pay {alone:7.2f}"
        )


if __name__ == "__main__":
    main()
