"""Deployment planning: where should an operator install charging pads?

Devices cluster around three work sites.  This example compares pad
placements — cooperative-cost-aware greedy, geometry-only k-means, a
uniform grid, and random — under the *scheduled* comprehensive cost, then
shows the marginal value of each additional pad.

Run with::

    python examples/deployment_planning.py
"""

import dataclasses

from repro.core import CCSInstance, Device, ccsga, comprehensive_cost
from repro.geometry import Field, Point, cluster_deployment, grid_deployment
from repro.planning import (
    candidate_sites,
    greedy_placement,
    kmeans_placement,
    random_placement,
)
from repro.wpt import Charger, PowerLawTariff

FIELD = Field.square(400.0)
PROTOTYPE = Charger(
    "proto", Point(0, 0),
    tariff=PowerLawTariff(base=30.0, unit=2e-3, exponent=0.9),
    efficiency=0.8, capacity=6,
)


def scheduled_cost(devices, chargers) -> float:
    instance = CCSInstance(devices=devices, chargers=list(chargers))
    return comprehensive_cost(ccsga(instance, certify=False).schedule, instance)


def main() -> None:
    positions = cluster_deployment(FIELD, 30, n_clusters=3, rng=11)
    devices = [
        Device(f"bot{i:02d}", p, demand=20e3, moving_rate=0.05)
        for i, p in enumerate(positions)
    ]
    sites = candidate_sites(FIELD, grid_side=5)
    k = 3

    grid_pads = [
        dataclasses.replace(PROTOTYPE, charger_id=f"grid{i}", position=p)
        for i, p in enumerate(grid_deployment(FIELD, k))
    ]
    strategies = {
        "greedy (cost-aware)": greedy_placement(
            devices, sites, k=k, prototype=PROTOTYPE
        ).chargers,
        "k-means (geometry)": kmeans_placement(devices, k, PROTOTYPE, rng=1),
        "uniform grid": grid_pads,
        "random": random_placement(FIELD, k, PROTOTYPE, rng=1),
    }

    print(f"30 clustered devices, {k} pads to place:\n")
    print(f"{'strategy':<22} {'scheduled cost':>15}")
    for name, chargers in strategies.items():
        print(f"{name:<22} {scheduled_cost(devices, chargers):>15.1f}")

    print("\nMarginal value of each additional pad (greedy trajectory):")
    deep = greedy_placement(devices, sites, k=6, prototype=PROTOTYPE)
    prev = None
    for i, cost in enumerate(deep.cost_trajectory, start=1):
        marginal = "" if prev is None else f"  (saves {prev - cost:7.1f})"
        print(f"  {i} pad(s): {cost:8.1f}{marginal}")
        prev = cost
    print("\nReading: pads near clusters unlock large shared sessions, and")
    print("returns diminish once every cluster is served.  Cluster-seeking")
    print("strategies (greedy over candidate sites, k-means at the exact")
    print("centroids) decisively beat cluster-blind grid/random layouts;")
    print("k-means can edge out greedy here only because greedy is")
    print("restricted to the candidate lattice.")


if __name__ == "__main__":
    main()
