"""Charging as a *service*: the long-lived daemon end to end.

Runs the `repro.service` daemon over a bursty request stream with
deadlines and price caps, then demonstrates the three contracts that
separate a service from a solver:

1. admission — every request answered immediately, with a reason;
2. the price-quote ceiling — no served device pays more than quoted;
3. durability — kill the daemon mid-journal, recover, re-feed, and end
   up byte-identical to the uninterrupted run.

Run with:  PYTHONPATH=src python examples/charging_service.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.geometry import Field, Point
from repro.service import (
    ChargingService,
    ServiceConfig,
    generate_requests,
)
from repro.wpt import Charger, PowerLawTariff

FIELD = Field(200.0, 200.0)
CHARGERS = [
    Charger(
        charger_id=f"pad-{k}",
        position=pos,
        tariff=PowerLawTariff(base=20.0, unit=1.0),
        capacity=6,
    )
    for k, pos in enumerate(
        [Point(50.0, 50.0), Point(150.0, 50.0), Point(100.0, 150.0)]
    )
]
CONFIG = ServiceConfig(epoch=60.0, window=180.0, queue_limit=64)


def main() -> None:
    requests = generate_requests(
        60,
        rate=0.4,
        field=FIELD,
        profile="burst",
        deadline_slack=280.0,
        max_price_factor=1.23,
        rng=2021,
    )

    workdir = Path(tempfile.mkdtemp(prefix="ccs-service-"))
    journal = workdir / "service.jsonl"
    service = ChargingService(CHARGERS, config=CONFIG, journal_path=journal)

    print("=== live operation ===")
    for request in requests:
        state = service.submit(request)
        if state == "rejected":
            record = service.requests[request.request_id]
            print(
                f"  t={request.submitted_at:7.1f}  {request.request_id} "
                f"REJECTED ({record.reason}; quote {record.quote:.0f})"
            )
    service.drain()

    counts = service.counts()
    sessions = service.final_schedule()
    print(f"\n{len(requests)} requests -> {len(sessions)} departed sessions")
    print("  " + "  ".join(f"{s}={n}" for s, n in sorted(counts.items()) if n))

    print("\n=== the quote is a ceiling ===")
    worst = 0.0
    for record in service.requests.values():
        if record.realized_cost is not None:
            worst = max(worst, record.realized_cost / record.quote)
    print(f"  worst realized/quoted ratio: {worst:.3f}  (never above 1.0)")
    snap = service.metrics_snapshot()
    print(f"  avg session size: "
          f"{snap['histograms']['session_size']['sum'] / max(1, len(sessions)):.2f}")
    print(f"  replanner ops: {service.planner.ops}")

    print("\n=== crash recovery ===")
    service.journal.close()
    raw = journal.read_bytes()
    torn = raw[: int(len(raw) * 0.6)]  # kill -9 at 60% of the journal
    crash = workdir / "crashed.jsonl"
    crash.write_bytes(torn)
    recovered = ChargingService.recover(crash, CHARGERS, config=CONFIG)
    print(f"  recovered {recovered.metrics_snapshot()['counters']['submitted']}"
          f"/{len(requests)} submissions from the torn journal")
    for request in requests:  # idempotent re-feed of the full stream
        recovered.submit(request)
    recovered.drain()
    recovered.journal.close()
    same = crash.read_bytes() == raw and (
        recovered.final_schedule() == service.final_schedule()
    )
    print(f"  re-fed stream -> byte-identical journal and schedule: {same}")


if __name__ == "__main__":
    main()
