"""Online charging service: requests arrive, the operator commits on the fly.

The offline CCS problem knows every request in advance; a deployed
charging service does not.  This example streams Poisson arrivals through
two online policies — immediate greedy dispatch and windowed batching —
at several commitment windows, and measures the empirical competitive
ratio against the clairvoyant offline CCSA.

Run with::

    python examples/online_service.py
"""

from repro.geometry import Field, grid_deployment
from repro.online import (
    BatchScheduler,
    GreedyDispatch,
    compare_policies,
    poisson_arrivals,
)
from repro.wpt import Charger, PowerLawTariff


def main() -> None:
    field = Field.square(300.0)
    chargers = [
        Charger(
            f"pad{j}", p,
            tariff=PowerLawTariff(base=30.0, unit=2e-3, exponent=0.9),
            efficiency=0.8, capacity=6,
        )
        for j, p in enumerate(grid_deployment(field, 5))
    ]
    # One request every ~30 s on average, 50 requests total.
    arrivals = poisson_arrivals(50, rate=1 / 30.0, field=field, rng=2021)
    span_min = arrivals[-1].time / 60.0
    print(f"{len(arrivals)} requests over {span_min:.0f} simulated minutes, "
          f"{len(chargers)} charging pads\n")

    policies = {
        "greedy, 30s window": GreedyDispatch(window=30.0),
        "greedy, 2min window": GreedyDispatch(window=120.0),
        "greedy, 10min window": GreedyDispatch(window=600.0),
        "batch, 2min window": BatchScheduler(window=120.0),
        "batch, 10min window": BatchScheduler(window=600.0),
    }
    outcomes = compare_policies(policies, arrivals, chargers)

    print(f"{'policy':<22} {'cost':>9} {'vs clairvoyant':>15} {'sessions':>9}")
    for name, o in outcomes.items():
        print(
            f"{name:<22} {o.online_cost:>9.1f} {o.competitive_ratio:>14.3f}x "
            f"{o.n_sessions:>9}"
        )
    print(f"\nclairvoyant offline CCSA cost: "
          f"{next(iter(outcomes.values())).offline_cost:.1f}")
    print("\nReading: longer commitment windows let more devices share a")
    print("session, trading service latency for cost — the online face of")
    print("the paper's cooperation-pays result.")


if __name__ == "__main__":
    main()
