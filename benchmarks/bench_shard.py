"""Benchmark the sharded charging service: throughput vs shard count.

Drives one seeded Poisson stream (uniform over a 400 m field, 16
chargers on a 4x4 grid) through :class:`~repro.shard.ShardedService` at
shards ∈ {1, 2, 4, 8} — no journals, measuring the kernels — and
reports sustained submission throughput (requests / CPU time spent in
``submit``, end-of-run drain reported separately) and p50/p99
single-``submit`` wall-clock latency per shard count, plus an unsharded
``ChargingService`` reference row under the identical configuration.
Each row is the best of 3 fresh runs — scheduler noise on a shared host
only ever *slows* a run, so the max is the cleanest estimate; outcome
columns are asserted identical across repeats.

Sharding wins here *algorithmically*, not by parallelism (the live
facade is single-threaded; ``cpu_count`` is recorded for context): each
kernel plans over ``m/N`` chargers and its own requests only, so the
per-submission candidate scans shrink with the shard count.  The
numbers should therefore increase monotonically with shards even on a
one-core host; ``make bench-shard`` rewrites
``benchmarks/BENCH_shard.json`` (checked in, host-dependent context —
not CI-enforced thresholds).

The 1-shard row doubles as a facade-overhead check against the
unsharded reference: identical session/done counts (the byte-identity
contract) and throughput within routing-overhead noise.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro.geometry import Field, Point
from repro.service import ChargingService, ServiceConfig, generate_keyed_requests
from repro.shard import ShardedService
from repro.wpt import Charger

HERE = Path(__file__).parent
RESULT_FILE = HERE / "BENCH_shard.json"

N_REQUESTS = 4000
SHARD_COUNTS = (1, 2, 4, 8)
SEED = 42
RATE = 2.0  # requests/s of logical time
FIELD = 400.0
N_CHARGERS = 16
HALO = 0.0


def make_chargers():
    side = 4
    chargers = []
    for i in range(N_CHARGERS):
        r, c = divmod(i, side)
        chargers.append(
            Charger(
                charger_id=f"c{i:02d}",
                position=Point(
                    FIELD * (2 * c + 1) / (2 * side),
                    FIELD * (2 * r + 1) / (2 * side),
                ),
                capacity=10,
            )
        )
    return chargers


def make_stream():
    return generate_keyed_requests(
        N_REQUESTS, rate=RATE, seed=SEED, field=Field(FIELD, FIELD)
    )


def measure(service, requests) -> dict:
    # Throughput from CPU time (immune to scheduler preemption on a
    # shared host — it is the algorithmic cost that sharding shrinks);
    # latency percentiles from wall-clock, as a caller would feel them.
    latencies = []
    cpu0 = time.process_time()
    for request in requests:
        t0 = time.perf_counter()
        service.submit(request)
        latencies.append(time.perf_counter() - t0)
    submit_cpu_s = time.process_time() - cpu0
    cpu0 = time.process_time()
    service.drain()
    drain_cpu_s = time.process_time() - cpu0
    latencies.sort()
    n = len(requests)
    counts = service.counts()
    return {
        "submit_cpu_s": round(submit_cpu_s, 4),
        "drain_cpu_s": round(drain_cpu_s, 4),
        "sustained_req_per_s": round(n / submit_cpu_s, 1),
        "submit_p50_us": round(1e6 * latencies[n // 2], 1),
        "submit_p99_us": round(1e6 * latencies[min(n - 1, (99 * n) // 100)], 1),
        "sessions": len(service.final_schedule()),
        "done": counts.get("done", 0),
    }


def build_service(n_shards: int):
    """``n_shards=0`` is the unsharded reference kernel."""
    if n_shards == 0:
        return ChargingService(make_chargers(), config=ServiceConfig())
    return ShardedService(
        make_chargers(),
        n_shards=n_shards,
        field=Field(FIELD, FIELD),
        halo=HALO,
        config=ServiceConfig(),
    )


def run_all(repeats: int = 3) -> dict:
    """Best (highest-throughput) of *repeats* fresh runs per shard count.

    Repeats are interleaved round-robin — (1, 2, 4, 8), three sweeps —
    so a slow phase of a shared host penalizes every shard count alike
    instead of whichever happened to be measured then; taking the best
    then discards the noise, which only ever slows a run.  Outcome
    columns are deterministic and asserted identical across repeats.
    """
    best: dict = {}
    for _ in range(repeats):
        for n_shards in (0, *SHARD_COUNTS):
            result = measure(build_service(n_shards), make_stream())
            prev = best.get(n_shards)
            if prev is not None:
                assert (result["sessions"], result["done"]) == (
                    prev["sessions"], prev["done"]
                ), "repeat run diverged — service is not deterministic"
            if prev is None or (
                result["sustained_req_per_s"] > prev["sustained_req_per_s"]
            ):
                best[n_shards] = result
    return {n: {"shards": n, **r} for n, r in best.items()}


def main() -> int:
    by_shards = run_all()
    reference = by_shards[0]
    print(
        f"unsharded: {reference['sustained_req_per_s']:9.1f} req/s  "
        f"p50={reference['submit_p50_us']:7.1f}us  "
        f"p99={reference['submit_p99_us']:8.1f}us"
    )
    results = []
    for n_shards in SHARD_COUNTS:
        result = by_shards[n_shards]
        results.append(result)
        print(
            f"shards={n_shards}: {result['sustained_req_per_s']:9.1f} req/s  "
            f"p50={result['submit_p50_us']:7.1f}us  "
            f"p99={result['submit_p99_us']:8.1f}us  "
            f"sessions={result['sessions']}"
        )
    # The 1-shard facade is the unsharded service (byte-identity): the
    # outcome columns must agree exactly, whatever the clock noise says.
    one = results[0]
    assert (one["sessions"], one["done"]) == (
        reference["sessions"],
        reference["done"],
    ), "1-shard facade diverged from the unsharded service"
    throughputs = [r["sustained_req_per_s"] for r in results]
    if throughputs != sorted(throughputs):
        print("WARNING: throughput not monotone in shard count", file=sys.stderr)
    doc = {
        "benchmark": "sharded charging service submit throughput/latency",
        "config": {
            "n_requests": N_REQUESTS,
            "rate_req_per_s": RATE,
            "field_m": FIELD,
            "chargers": N_CHARGERS,
            "halo_m": HALO,
            "epoch_s": ServiceConfig().epoch,
            "window_s": ServiceConfig().window,
            "seed": SEED,
        },
        "unsharded_reference": reference,
        "results": results,
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
    }
    RESULT_FILE.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {RESULT_FILE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
