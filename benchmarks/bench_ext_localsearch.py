"""Extension ablation — how much headroom does local search find?

Quantifies the gap DESIGN.md's local-search extension closes: CCSA,
CCSA + polish, and OPT on small instances.  Expected shape: polish never
hurts, lands between CCSA and OPT, and the remaining gap is small.
"""

from repro.core import ccsa, comprehensive_cost, improve_schedule, optimal_schedule
from repro.workloads import SMALL_SCALE_SPEC, generate_instance


def run_ablation(trials: int = 8):
    rows = []
    for t in range(trials):
        inst = generate_instance(SMALL_SCALE_SPEC.with_(n_devices=10), seed=900 + t)
        c_ccsa = comprehensive_cost(ccsa(inst), inst)
        c_polished = comprehensive_cost(improve_schedule(ccsa(inst), inst), inst)
        c_opt = comprehensive_cost(optimal_schedule(inst), inst)
        rows.append((c_ccsa, c_polished, c_opt))
    return rows


def test_local_search_ablation(benchmark, once):
    rows = once(benchmark, run_ablation, trials=8)
    print()
    print(f"{'trial':>5} {'CCSA':>9} {'CCSA+ls':>9} {'OPT':>9} {'gap before':>11} {'gap after':>10}")
    for t, (a, p, o) in enumerate(rows):
        print(f"{t:>5} {a:>9.2f} {p:>9.2f} {o:>9.2f} "
              f"{100*(a-o)/o:>10.2f}% {100*(p-o)/o:>9.2f}%")
    for a, p, o in rows:
        assert o - 1e-9 <= p <= a + 1e-9
    mean_before = sum((a - o) / o for a, p, o in rows) / len(rows)
    mean_after = sum((p - o) / o for a, p, o in rows) / len(rows)
    print(f"mean gap vs OPT: {100*mean_before:.2f}% -> {100*mean_after:.2f}%")
    assert mean_after <= mean_before
