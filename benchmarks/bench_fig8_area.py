"""Fig 8 — comprehensive cost vs field side length.

Expected shape: costs rise with the field (longer trips); cooperation's
*relative* advantage narrows as moving costs dominate, but never inverts.
"""

from repro.experiments import fig8_cost_vs_field_side, render_series


def test_fig8_cost_vs_field_side(benchmark, once):
    result = once(
        benchmark,
        fig8_cost_vs_field_side,
        values=(100.0, 300.0, 600.0, 1000.0),
        trials=3,
    )
    print()
    print(render_series(result))
    nca, ccsa_ = result.series["NCA"], result.series["CCSA"]
    assert all(a <= b + 1e-9 for a, b in zip(ccsa_, nca))
    assert nca == sorted(nca)  # bigger field, higher cost
    # Relative saving shrinks as moving costs dominate.
    saving_small = (nca[0] - ccsa_[0]) / nca[0]
    saving_large = (nca[-1] - ccsa_[-1]) / nca[-1]
    assert saving_large < saving_small
