"""Table 2 — CCSA vs the exact optimum and the noncooperation baseline.

Abstract claims reproduced here: CCSA's average comprehensive cost is
~7.3% above optimal and ~27.3% below the noncooperation algorithm.  The
assertions accept a band around those numbers (our substrate is a
reconstruction, not the authors' code), but the *shape* — OPT wins, CCSA
close behind, NCA far worse — must hold.
"""

from repro.experiments import render_table, table2_optimality


def test_table2_optimality(benchmark, once):
    stats = once(benchmark, table2_optimality, device_counts=(6, 8, 10, 12), trials=5)
    print()
    print(render_table(stats.table))
    print(
        f"paper: gap vs OPT ~7.3%, saving vs NCA ~27.3% | "
        f"measured: gap {stats.avg_gap_vs_optimal_pct:.1f}%, "
        f"saving {stats.avg_saving_vs_nca_pct:.1f}%"
    )
    benchmark.extra_info["gap_vs_opt_pct"] = stats.avg_gap_vs_optimal_pct
    benchmark.extra_info["saving_vs_nca_pct"] = stats.avg_saving_vs_nca_pct
    assert 0.0 <= stats.avg_gap_vs_optimal_pct <= 15.0
    assert 18.0 <= stats.avg_saving_vs_nca_pct <= 40.0
