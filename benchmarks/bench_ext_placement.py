"""Extension — charger placement strategies under the cooperative objective.

Compares greedy (cost-aware), k-means (geometry-only), grid, and random
placements of k pads for a clustered device population, each evaluated by
the scheduled comprehensive cost.  Expected shape: cost-aware greedy and
k-means (which finds the clusters) clearly beat grid and random; more
pads never hurt.
"""

from repro.core import CCSInstance, Device, ccsga, comprehensive_cost
from repro.geometry import Field, Point, cluster_deployment, grid_deployment
from repro.planning import (
    candidate_sites,
    greedy_placement,
    kmeans_placement,
    random_placement,
)
from repro.wpt import Charger, PowerLawTariff

FIELD = Field.square(300.0)
PROTO = Charger(
    "proto", Point(0, 0),
    tariff=PowerLawTariff(base=30.0, unit=2e-3, exponent=0.9),
    efficiency=0.8, capacity=6,
)


def run_placement(k=3, n_devices=24, seed=4):
    pts = cluster_deployment(FIELD, n_devices, n_clusters=3, rng=seed)
    devices = [
        Device(f"d{i}", p, demand=20e3, moving_rate=0.05) for i, p in enumerate(pts)
    ]

    def cost_of(chargers):
        inst = CCSInstance(devices=devices, chargers=list(chargers))
        return comprehensive_cost(ccsga(inst, certify=False).schedule, inst)

    import dataclasses

    grid = [
        dataclasses.replace(PROTO, charger_id=f"grid{i}", position=p)
        for i, p in enumerate(grid_deployment(FIELD, k))
    ]
    return {
        "greedy": greedy_placement(
            devices, candidate_sites(FIELD, 5), k=k, prototype=PROTO
        ).final_cost,
        "kmeans": cost_of(kmeans_placement(devices, k, PROTO, rng=1)),
        "grid": cost_of(grid),
        "random": cost_of(random_placement(FIELD, k, PROTO, rng=1)),
    }


def test_placement_strategies(benchmark, once):
    costs = once(benchmark, run_placement, k=3, n_devices=24, seed=4)
    print()
    for name, cost in sorted(costs.items(), key=lambda kv: kv[1]):
        print(f"{name:<8} {cost:>9.1f}")
    assert costs["greedy"] <= costs["random"] + 1e-6
    assert costs["greedy"] <= costs["grid"] + 1e-6
    assert costs["kmeans"] <= costs["random"] + 1e-6
