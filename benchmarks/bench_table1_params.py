"""Table 1 — simulation parameter settings (the reconstruction record)."""

from repro.experiments import render_table, table1_parameters


def test_table1_parameters(benchmark, once):
    result = once(benchmark, table1_parameters)
    print()
    print(render_table(result))
    assert len(result.rows) >= 10
