"""Fig 7 — comprehensive cost vs session base price.

Expected shape: the absolute gap between NCA and the cooperative
algorithms widens as the base fee grows (NCA pays it per device,
cooperation amortizes it per group).
"""

from repro.experiments import fig7_cost_vs_base_price, render_series


def test_fig7_cost_vs_base_price(benchmark, once):
    result = once(
        benchmark, fig7_cost_vs_base_price, values=(0.0, 20.0, 40.0, 80.0), trials=3
    )
    print()
    print(render_series(result))
    gaps = [
        n - c for n, c in zip(result.series["NCA"], result.series["CCSA"])
    ]
    assert gaps[-1] > gaps[0]
    assert all(g >= -1e-9 for g in gaps)
