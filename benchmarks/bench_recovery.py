"""Benchmark crash recovery: snapshot + suffix replay vs full replay.

Runs the same seeded request stream through two journaled daemons — one
bare (recovery must replay every record) and one with periodic
checksummed snapshots + prefix compaction (recovery loads the newest
snapshot and replays only the suffix; see ``docs/RECOVERY.md``) — then
times :meth:`~repro.service.kernel.ChargingService.recover` against each
journal and checks the two recovered states are byte-identical to the
live daemon's (schedule and metrics snapshot).

Reported per size:

- full-replay and snapshot recovery wall time (best of ``ROUNDS``),
- the speedup ratio (the tentpole claim: snapshots make recovery
  O(events since last snapshot), not O(journal)),
- records replayed on the snapshot path vs the journal's record count,
- byte-identity of both recovered states.

Two entry points:

- ``pytest benchmarks/bench_recovery.py --benchmark-only`` — the n=1000
  snapshot recovery timed under pytest-benchmark;
- ``PYTHONPATH=src python benchmarks/bench_recovery.py`` — standalone,
  rewrites ``benchmarks/BENCH_recovery.json`` (checked in).  Wall-clock
  numbers are host-dependent context, not CI-enforced thresholds.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

from repro.geometry import Field, Point
from repro.service import ChargingService, ServiceConfig, generate_requests
from repro.wpt import Charger

HERE = Path(__file__).parent
RESULT_FILE = HERE / "BENCH_recovery.json"

SIZES = (500, 1000, 2000)
SEED = 42
RATE = 2.0  # requests/s of logical time
FIELD = 400.0
N_CHARGERS = 8
SNAPSHOT_EVERY = 200
ROUNDS = 3


def make_chargers():
    side = int(N_CHARGERS ** 0.5) or 1
    chargers = []
    for i in range(N_CHARGERS):
        r, c = divmod(i, side)
        chargers.append(
            Charger(
                charger_id=f"c{i}",
                position=Point(
                    FIELD * (c + 1) / (side + 1),
                    FIELD * (r + 1) / (side + 2),
                ),
                capacity=10,
            )
        )
    return chargers


def build_journal(n: int, path: Path, snapshot_every=None):
    """Drive the stream into a journal; return (schedule, metrics)."""
    requests = generate_requests(
        n, rate=RATE, field=Field(FIELD, FIELD), rng=SEED
    )
    service = ChargingService(
        make_chargers(),
        config=ServiceConfig(),
        journal_path=path,
        journal_sync=False,
        snapshot_every=snapshot_every,
    )
    for request in requests:
        service.submit(request)
    service.drain()
    schedule = service.final_schedule()
    metrics = service.metrics_snapshot()
    service.journal.close()
    return schedule, metrics


def time_recover(path: Path, snapshot_every=None, rounds: int = ROUNDS):
    """Best-of-*rounds* recovery wall time; returns (seconds, last service)."""
    best = float("inf")
    service = None
    for _ in range(rounds):
        if service is not None:
            service.journal.close()
        t0 = time.perf_counter()
        service = ChargingService.recover(
            path,
            make_chargers(),
            config=ServiceConfig(),
            journal_sync=False,
            snapshot_every=snapshot_every,
        )
        best = min(best, time.perf_counter() - t0)
    return best, service


def run_once(n: int) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        plain = Path(tmp) / "plain.jsonl"
        snapped = Path(tmp) / "snapped.jsonl"
        schedule, metrics = build_journal(n, plain)
        schedule2, metrics2 = build_journal(n, snapped, SNAPSHOT_EVERY)
        assert schedule2 == schedule and metrics2 == metrics

        full_s, full = time_recover(plain)
        snap_s, snap = time_recover(snapped, SNAPSHOT_EVERY)
        identical = (
            full.final_schedule() == schedule
            and snap.final_schedule() == schedule
            and full.metrics_snapshot() == metrics
            and snap.metrics_snapshot() == metrics
        )
        counters = snap.observability_snapshot()["counters"]
        full_counters = full.observability_snapshot()["counters"]
        full.journal.close()
        snap.journal.close()
    return {
        "n": n,
        "journal_records": full_counters["recovery.records_replayed"],
        "full_replay_s": round(full_s, 4),
        "snapshot_recovery_s": round(snap_s, 4),
        "speedup": round(full_s / snap_s, 1),
        "records_replayed_from_snapshot": counters["recovery.records_replayed"],
        "snapshot_used": bool(counters["recovery.snapshot_used"]),
        "recovered_byte_identical": identical,
    }


def test_snapshot_recovery_benchmark(benchmark):
    """pytest-benchmark entry: time one n=1000 snapshot recovery."""
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "snapped.jsonl"
        schedule, _metrics = build_journal(1000, path, SNAPSHOT_EVERY)

        def run():
            _s, service = time_recover(path, SNAPSHOT_EVERY, rounds=1)
            return service

        service = benchmark.pedantic(run, rounds=1, iterations=1)
        assert service.final_schedule() == schedule
        service.journal.close()


def main() -> int:
    results = []
    for n in SIZES:
        result = run_once(n)
        results.append(result)
        print(
            f"n={n:5d}: full={result['full_replay_s']:7.4f}s  "
            f"snapshot={result['snapshot_recovery_s']:7.4f}s  "
            f"speedup={result['speedup']:5.1f}x  "
            f"replayed={result['records_replayed_from_snapshot']}"
            f"/{result['journal_records']}  "
            f"identical={result['recovered_byte_identical']}"
        )
    doc = {
        "benchmark": "journal recovery: snapshot + suffix replay vs full replay",
        "config": {
            "rate_req_per_s": RATE,
            "field_m": FIELD,
            "chargers": N_CHARGERS,
            "snapshot_every": SNAPSHOT_EVERY,
            "rounds": ROUNDS,
            "seed": SEED,
        },
        "results": results,
        "python": sys.version.split()[0],
    }
    RESULT_FILE.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {RESULT_FILE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
