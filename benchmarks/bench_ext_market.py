"""Extension — operator price competition.

Best-response posted-price dynamics over the charging-service market with
device-side CCSGA responses.  Expected shape: the dynamics converge, base
fees fall from the monopoly level, and consumer cost falls with them
(Bertrand-style pressure).
"""

from repro.market import CompetitionConfig, best_response_competition
from repro.workloads import quick_instance


def run_market(seed=9):
    instance = quick_instance(
        n_devices=20, n_chargers=3, seed=seed,
        heterogeneous_prices=False, base_price=45.0,
    )
    return best_response_competition(
        instance,
        CompetitionConfig(candidate_bases=(0.0, 10.0, 20.0, 30.0, 45.0), max_rounds=8),
    )


def test_price_competition(benchmark, once):
    result = once(benchmark, run_market, seed=9)
    print()
    print(f"{'round':>5} {'posted base fees':<24} {'consumer cost':>14}")
    for k, (prices, cost) in enumerate(
        zip(result.price_history, result.consumer_cost_history)
    ):
        print(f"{k:>5} {str([f'{p:.0f}' for p in prices]):<24} {cost:>14.1f}")
    assert result.converged
    assert sum(result.final_prices) < sum(result.price_history[0])
    assert result.consumer_cost_history[-1] <= result.consumer_cost_history[0] + 1e-9
