"""Table 3 — the field experiment: 5 chargers, 8 nodes, paired rounds.

Abstract claim reproduced here: CCSA outperforms the noncooperation
algorithm by ~42.9% in measured comprehensive cost on the testbed.
"""

from repro.experiments import render_table, table3_field


def test_table3_field_experiment(benchmark, once):
    stats = once(benchmark, table3_field, rounds=10, seed=3)
    print()
    print(render_table(stats.table))
    print(
        f"paper: CCSA beats NCA by ~42.9% | "
        f"measured: {stats.avg_improvement_pct:.1f}%"
    )
    benchmark.extra_info["improvement_pct"] = stats.avg_improvement_pct
    assert stats.ccsa_mean_cost < stats.nca_mean_cost
    assert 30.0 <= stats.avg_improvement_pct <= 55.0
