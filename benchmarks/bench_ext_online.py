"""Extension — online scheduling: empirical competitive ratios.

Requests arrive as a Poisson stream; policies commit without seeing the
future and are compared against the clairvoyant offline CCSA on the same
instance.  Expected shape: ratios modestly above 1, tiny commitment
windows hurt (forced singletons), generous windows approach clairvoyance.
"""

from repro.geometry import Field, grid_deployment
from repro.online import (
    BatchScheduler,
    GreedyDispatch,
    burst_arrivals,
    compare_policies,
    diurnal_arrivals,
    poisson_arrivals,
)
from repro.wpt import Charger, PowerLawTariff

FIELD = Field.square(300.0)


def make_chargers():
    return [
        Charger(
            f"c{j}", p,
            tariff=PowerLawTariff(base=30.0, unit=2e-3, exponent=0.9),
            efficiency=0.8, capacity=6,
        )
        for j, p in enumerate(grid_deployment(FIELD, 5))
    ]


def run_online(n=40, seed=5):
    arrivals = poisson_arrivals(n, rate=1 / 30.0, field=FIELD, rng=seed)
    chargers = make_chargers()
    return compare_policies(
        {
            "greedy w=30s": GreedyDispatch(window=30.0),
            "greedy w=120s": GreedyDispatch(window=120.0),
            "greedy w=600s": GreedyDispatch(window=600.0),
            "batch  w=120s": BatchScheduler(window=120.0),
            "batch  w=600s": BatchScheduler(window=600.0),
        },
        arrivals,
        chargers,
    )


def test_online_competitive_ratios(benchmark, once):
    outcomes = once(benchmark, run_online, n=40, seed=5)
    print()
    print(f"{'policy':<14} {'online':>9} {'offline':>9} {'ratio':>7} {'sessions':>9}")
    for name, o in outcomes.items():
        print(f"{name:<14} {o.online_cost:>9.1f} {o.offline_cost:>9.1f} "
              f"{o.competitive_ratio:>7.3f} {o.n_sessions:>9}")
    ratios = {name: o.competitive_ratio for name, o in outcomes.items()}
    # Sanity band on every ratio, and window monotonicity for greedy.
    assert all(0.95 <= r <= 2.5 for r in ratios.values())
    assert ratios["greedy w=600s"] <= ratios["greedy w=30s"] + 1e-9


def run_traces(seed=1):
    """Same policies over structured traces: diurnal sparsity vs bursts."""
    chargers = make_chargers()
    traces = {
        "poisson": poisson_arrivals(40, rate=1 / 30.0, field=FIELD, rng=seed),
        "diurnal": diurnal_arrivals(40, FIELD, rng=seed),
        "bursty": burst_arrivals(4, 10, FIELD, rng=seed),
    }
    policies = {
        "greedy": GreedyDispatch(window=120.0),
        "batch": BatchScheduler(window=120.0),
    }
    return {
        name: compare_policies(policies, arrivals, chargers)
        for name, arrivals in traces.items()
    }


def test_online_trace_structure(benchmark, once):
    results = once(benchmark, run_traces, seed=1)
    print()
    print(f"{'trace':<9} {'greedy ratio':>13} {'batch ratio':>12}")
    for trace, out in results.items():
        print(f"{trace:<9} {out['greedy'].competitive_ratio:>13.3f} "
              f"{out['batch'].competitive_ratio:>12.3f}")
    # Bursts are batchable: near-clairvoyant.  Diurnal sparsity is the
    # hard case: night-time arrivals cannot be grouped within any finite
    # window, so ratios exceed the steady-Poisson case.
    for policy in ("greedy", "batch"):
        assert results["bursty"][policy].competitive_ratio < 1.15
        assert (
            results["diurnal"][policy].competitive_ratio
            >= results["poisson"][policy].competitive_ratio - 0.05
        )
