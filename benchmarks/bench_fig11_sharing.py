"""Fig 11 — the intragroup cost-sharing schemes compared.

Expected shape: total efficiency (mean member cost) is similar across
schemes, but the per-joule price dispersion — the fairness metric — is
far higher under egalitarian sharing than under proportional or Shapley
sharing on heterogeneous demands.
"""

from repro.experiments import fig11_sharing_fairness, render_series


def test_fig11_sharing_schemes(benchmark, once):
    result = once(benchmark, fig11_sharing_fairness, trials=4)
    print()
    print(render_series(result, precision=3))
    disp = {label: series[1] for label, series in result.series.items()}
    assert disp["proportional"] < disp["egalitarian"]
    assert disp["shapley"] < disp["egalitarian"]
    # Mean member cost within 25% across schemes (same dynamics, same economics).
    means = [series[0] for series in result.series.values()]
    assert max(means) <= 1.25 * min(means)
