"""Extension — empirical price of anarchy of the coalition game.

Samples Nash equilibria via random CCSGA sweep orders and compares worst
and best against the exact optimum (small n) or the certified lower bound
(large n).  Expected shape: PoS ≈ 1 (some equilibrium is near-optimal),
PoA modest (< 1.5 against OPT on these workloads).
"""

from repro.game import equilibrium_quality
from repro.workloads import quick_instance


def run_poa():
    rows = []
    for n, samples in ((8, 8), (10, 8), (12, 6), (30, 3)):
        inst = quick_instance(n_devices=n, n_chargers=3, seed=100 + n, capacity=5)
        rows.append((n, equilibrium_quality(inst, samples=samples, seed=1)))
    return rows


def test_price_of_anarchy(benchmark, once):
    rows = once(benchmark, run_poa)
    print()
    print(f"{'n':>4} {'baseline':<12} {'PoA':>6} {'PoS':>6} {'NE spread':>10}")
    for n, q in rows:
        print(f"{n:>4} {q.baseline:<12} {q.price_of_anarchy:>6.3f} "
              f"{q.price_of_stability:>6.3f} {q.spread:>9.2%}")
    for _n, q in rows:
        assert q.price_of_anarchy >= q.price_of_stability
        if q.baseline == "optimal":
            assert q.price_of_stability >= 1.0 - 1e-9
            assert q.price_of_anarchy < 1.6
