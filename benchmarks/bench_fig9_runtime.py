"""Fig 9 — solver runtime vs number of devices.

Abstract claim reproduced here: "CCSGA is much faster than the
approximation algorithm and is more suitable for large-scale cooperative
charging scheduling."  Expected shape: CCSGA ≪ CCSA at large n, OPT
explodes and is only measured on small instances.
"""

import math

from repro.experiments import fig9_runtime, render_series


def test_fig9_runtime(benchmark, once):
    result = once(
        benchmark,
        fig9_runtime,
        values=(10, 20, 40, 80),
        trials=2,
        include_optimal_upto=12,
    )
    print()
    print(render_series(result, precision=4))
    ccsa_t, ccsga_t = result.series["CCSA"], result.series["CCSGA"]
    # At the largest size CCSGA must be decisively faster than CCSA.
    assert ccsga_t[-1] < ccsa_t[-1]
    # OPT is only measured where tractable.
    opt_t = result.series["OPT"]
    assert not math.isnan(opt_t[0])
    assert math.isnan(opt_t[-1])
