"""Benchmark the charging-service daemon: sustained throughput and
per-submission decision latency.

Drives a seeded Poisson stream of n ∈ {100, 1000, 5000} requests through
:class:`~repro.service.kernel.ChargingService` (no journal — measuring
the kernel, not the filesystem) with sessions retiring on the normal
epoch cadence, and reports:

- sustained request throughput (submissions processed / wall-clock s),
- p50 / p99 wall-clock latency of a single ``submit`` call (admission
  decision + quote + any epoch boundary work folded into that call),
- replanner operation counts per request (the incrementality signal —
  flat per-request candidate work as n grows 50x).

Two entry points:

- ``pytest benchmarks/bench_service.py --benchmark-only`` — the n=1000
  case timed under pytest-benchmark;
- ``PYTHONPATH=src python benchmarks/bench_service.py`` — standalone,
  rewrites ``benchmarks/BENCH_service.json`` (checked in).  Wall-clock
  numbers are host-dependent context, not CI-enforced thresholds.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.geometry import Field, Point
from repro.service import ChargingService, ServiceConfig, generate_requests
from repro.wpt import Charger

HERE = Path(__file__).parent
RESULT_FILE = HERE / "BENCH_service.json"

SIZES = (100, 1000, 5000)
SEED = 42
RATE = 2.0  # requests/s of logical time
FIELD = 400.0
N_CHARGERS = 8


def make_chargers():
    side = int(N_CHARGERS ** 0.5) or 1
    chargers = []
    for i in range(N_CHARGERS):
        r, c = divmod(i, side)
        chargers.append(
            Charger(
                charger_id=f"c{i}",
                position=Point(
                    FIELD * (c + 1) / (side + 1),
                    FIELD * (r + 1) / (side + 2),
                ),
                capacity=10,
            )
        )
    return chargers


def run_once(n: int) -> dict:
    requests = generate_requests(
        n, rate=RATE, field=Field(FIELD, FIELD), rng=SEED
    )
    service = ChargingService(make_chargers(), config=ServiceConfig())
    latencies = []
    t_start = time.perf_counter()
    for request in requests:
        t0 = time.perf_counter()
        service.submit(request)
        latencies.append(time.perf_counter() - t0)
    service.drain()
    elapsed = time.perf_counter() - t_start
    latencies.sort()
    ops = dict(service.planner.ops)
    counts = service.counts()
    candidates = ops["insert_candidates"] + ops["scan_candidates"]
    return {
        "n": n,
        "wall_s": round(elapsed, 4),
        "sustained_req_per_s": round(n / elapsed, 1),
        "submit_p50_us": round(1e6 * latencies[len(latencies) // 2], 1),
        "submit_p99_us": round(1e6 * latencies[min(n - 1, (99 * n) // 100)], 1),
        "sessions": len(service.final_schedule()),
        "done": counts["done"],
        "candidates_per_request": round(candidates / n, 1),
        "full_solves": ops["full_solves"],
    }


def test_service_submit_benchmark(benchmark):
    """pytest-benchmark entry: time one full n=1000 service run."""
    pytest_bench_n = 1000

    def run():
        return run_once(pytest_bench_n)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result["full_solves"] == 0


def main() -> int:
    results = []
    for n in SIZES:
        result = run_once(n)
        results.append(result)
        print(
            f"n={n:5d}: {result['sustained_req_per_s']:9.1f} req/s  "
            f"p50={result['submit_p50_us']:8.1f}us  "
            f"p99={result['submit_p99_us']:8.1f}us  "
            f"candidates/req={result['candidates_per_request']:6.1f}  "
            f"sessions={result['sessions']}"
        )
    doc = {
        "benchmark": "charging-service daemon submit throughput/latency",
        "config": {
            "rate_req_per_s": RATE,
            "field_m": FIELD,
            "chargers": N_CHARGERS,
            "epoch_s": ServiceConfig().epoch,
            "window_s": ServiceConfig().window,
            "seed": SEED,
        },
        "results": results,
        "python": sys.version.split()[0],
    }
    RESULT_FILE.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {RESULT_FILE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
