"""Extension — truthfulness of the cost-sharing schemes.

For every device, searches a grid of demand misreports (0.25×–1.5×)
against the CCSGA equilibrium response, charging private top-ups for
shortfalls.  Expected shape: proportional sharing is empirically
strategyproof on these workloads; egalitarian sharing admits only small
schedule-manipulation gains; the rigged "whale pays" mock shows the
detector has teeth.
"""

from typing import Dict, Sequence

from repro.core import EgalitarianSharing, ProportionalSharing, ShapleySharing, ccsa
from repro.game import incentive_profile
from repro.numeric import is_exact_zero
from repro.workloads import quick_instance


class WhalePaysScheme:
    """Rigged control: the largest reporter pays the whole session bill."""

    name = "whale-mock"

    def shares(self, instance, members: Sequence[int], charger: int) -> Dict[int, float]:
        price = instance.charging_price(members, charger)
        whale = max(members, key=lambda i: (instance.devices[i].demand, i))
        return {i: (price if i == whale else 0.0) for i in members}


def run_incentives(seed=44):
    instance = quick_instance(
        n_devices=10, n_chargers=3, seed=seed, capacity=5, demand_model="lognormal"
    )
    schemes = {
        "proportional": ProportionalSharing(),
        "egalitarian": EgalitarianSharing(),
        "shapley": ShapleySharing(exact_limit=6, samples=200),
        "whale (rigged)": WhalePaysScheme(),
    }
    rows = {}
    for name, scheme in schemes.items():
        scheduler = ccsa if name == "whale (rigged)" else None
        rows[name] = incentive_profile(instance, scheme=scheme, scheduler=scheduler)
    return rows


def test_misreporting_incentives(benchmark, once):
    rows = once(benchmark, run_incentives, seed=44)
    print()
    print(f"{'scheme':<16} {'manipulable':>12} {'mean gain':>10}")
    for name, prof in rows.items():
        print(f"{name:<16} {prof.manipulable_fraction:>11.0%} "
              f"{prof.mean_gain_pct:>9.2f}%")
    assert is_exact_zero(rows["proportional"].manipulable_fraction)
    assert rows["egalitarian"].mean_gain_pct < 5.0
    assert rows["whale (rigged)"].manipulable_fraction > 0.0
