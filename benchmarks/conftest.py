"""Benchmark-suite configuration.

Every benchmark regenerates one table or figure of the reconstructed
evaluation (see DESIGN.md's experiment index) via ``benchmark.pedantic``
with a single round — these are experiment reproductions, not
microbenchmarks, so wall-clock is recorded but statistical repetition is
left to the experiment's own ``trials`` parameter.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Time *fn* exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    """Fixture exposing :func:`run_once`."""
    return run_once
