"""Extension — steady-state lifecycle comparison on the testbed.

Continuous operation with persistent batteries (see
``repro.sim.lifecycle``): sensing drain triggers charging requests; the
scheduler serves each wave.  Expected shape: cooperation wins in steady
state too, with full survival for both schedulers at the default drain.
"""

from repro.core import ccsa, noncooperation
from repro.numeric import EXACT_ONE, is_exact
from repro.sim import LifecycleConfig, run_lifecycle


def run_comparison(epochs: int = 16, seed: int = 21):
    cfg = LifecycleConfig(epochs=epochs, seed=seed)
    return {
        "CCSA": run_lifecycle(ccsa, cfg),
        "NCA": run_lifecycle(noncooperation, cfg),
    }


def test_lifecycle_steady_state(benchmark, once):
    results = once(benchmark, run_comparison, epochs=16, seed=21)
    print()
    print(f"{'scheduler':<10} {'rounds':>7} {'total cost':>11} "
          f"{'energy kJ':>10} {'survival':>9}")
    for name, res in results.items():
        print(f"{name:<10} {res.charging_rounds:>7} {res.total_cost:>11.2f} "
              f"{res.total_energy_delivered/1e3:>10.2f} {res.survival_rate:>9.2f}")
    ccsa_res, nca_res = results["CCSA"], results["NCA"]
    assert ccsa_res.charging_rounds == nca_res.charging_rounds
    assert ccsa_res.total_cost < nca_res.total_cost
    assert is_exact(ccsa_res.survival_rate, EXACT_ONE)
    assert is_exact(nca_res.survival_rate, EXACT_ONE)
