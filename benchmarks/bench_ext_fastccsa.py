"""Extension ablation — CCSA candidate pruning (the scaling knob).

CCSA's per-round submodular minimization dominates its runtime.  Pruning
each charger's oracle to its K cheapest-to-reach uncovered devices trades
a sliver of cost for a large speedup.  Expected shape: ≤ ~3% cost
regression and a multi-x speedup at n=100 for K = 2× slot capacity.
"""

import time

from repro.core import ccsa, comprehensive_cost
from repro.workloads import WorkloadSpec, generate_instance


def run_pruning_ablation(budgets=(None, 24, 16, 10), seed=42):
    spec = WorkloadSpec(n_devices=80, n_chargers=8, side=500.0, capacity=8)
    instance = generate_instance(spec, seed=seed)
    rows = []
    for budget in budgets:
        t0 = time.perf_counter()
        schedule = ccsa(instance, max_candidates=budget)
        elapsed = time.perf_counter() - t0
        rows.append((budget, comprehensive_cost(schedule, instance), elapsed))
    return rows


def test_ccsa_pruning_ablation(benchmark, once):
    rows = once(benchmark, run_pruning_ablation)
    print()
    print(f"{'K':>6} {'cost':>10} {'seconds':>9} {'cost vs full':>13} {'speedup':>8}")
    full_cost, full_time = rows[0][1], rows[0][2]
    for budget, cost, elapsed in rows:
        label = "full" if budget is None else str(budget)
        print(f"{label:>6} {cost:>10.1f} {elapsed:>9.2f} "
              f"{100 * (cost - full_cost) / full_cost:>12.2f}% "
              f"{full_time / elapsed:>7.1f}x")
    for _budget, cost, _elapsed in rows[1:]:
        assert cost <= 1.05 * full_cost  # at most 5% regression
    # The tightest budget must be decisively faster than the full oracle.
    assert rows[-1][2] < full_time / 2
