"""Fig 6 — comprehensive cost vs number of chargers.

Expected shape: more chargers = shorter trips and better prices, so every
algorithm's cost falls (weakly) with m, and cooperation stays ahead.
"""

from repro.experiments import fig6_cost_vs_chargers, render_series


def test_fig6_cost_vs_chargers(benchmark, once):
    result = once(benchmark, fig6_cost_vs_chargers, values=(2, 4, 8, 12, 16), trials=3)
    print()
    print(render_series(result))
    nca, ccsa_ = result.series["NCA"], result.series["CCSA"]
    assert all(a <= b + 1e-9 for a, b in zip(ccsa_, nca))
    # Denser charger deployments never hurt (first vs last point).
    assert nca[-1] <= nca[0]
    assert ccsa_[-1] <= ccsa_[0]
