"""Benchmark the execution subsystem: serial vs parallel vs cache replay.

Runs the full evaluation (``run_all``) three ways —

1. serial (``--jobs 1``) into a fresh cache,
2. parallel (``--jobs N``) into another fresh cache,
3. serial replay from the parallel run's cache —

byte-compares the three reports, and records wall-clock numbers in
``benchmarks/BENCH_exec.json``.  ``CCS_BENCH_ZERO_TIMER`` is set so the
runtime figure (fig9) reports zeros and the byte comparison is
meaningful; the *outer* wall-clock measurements below are real.

The parallel speedup scales with physical cores: on a single-core host
(like the box that recorded the checked-in JSON) jobs mostly add
process-pool overhead, while on >= 4 cores the fan-out is expected to
cut wall-clock by >= 2x.  ``cpu_count`` is recorded alongside so the
numbers read honestly.

Usage::

    PYTHONPATH=src python benchmarks/bench_exec.py [--trials 3] [--jobs 4] [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

os.environ.setdefault("CCS_BENCH_ZERO_TIMER", "1")

from repro.experiments import run_all  # noqa: E402
from repro.experiments.exec import (  # noqa: E402
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
)

OUT = Path(__file__).parent / "BENCH_exec.json"

#: A reduced experiment set for --quick smoke runs of this script.
QUICK_IDS = ["table2", "table3", "fig10", "fig12"]


def _timed_run(executor, trials, only):
    t0 = time.perf_counter()
    report = run_all(trials=trials, only=only, executor=executor)
    elapsed = time.perf_counter() - t0
    return report, elapsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument(
        "--quick", action="store_true", help=f"only run {QUICK_IDS} (smoke mode)"
    )
    parser.add_argument("--out", default=str(OUT))
    args = parser.parse_args(argv)
    only = QUICK_IDS if args.quick else None

    with tempfile.TemporaryDirectory(prefix="ccs-bench-exec-") as tmp:
        serial_ex = SerialExecutor(cache=ResultCache(Path(tmp) / "serial"))
        print(f"serial run (--jobs 1, trials={args.trials}) ...", flush=True)
        serial_report, serial_s = _timed_run(serial_ex, args.trials, only)
        print(f"  {serial_s:.1f}s, {serial_ex.computed} tasks computed", flush=True)

        parallel_cache = Path(tmp) / "parallel"
        parallel_ex = ParallelExecutor(args.jobs, cache=ResultCache(parallel_cache))
        print(f"parallel run (--jobs {args.jobs}) ...", flush=True)
        parallel_report, parallel_s = _timed_run(parallel_ex, args.trials, only)
        print(f"  {parallel_s:.1f}s, {parallel_ex.computed} tasks computed", flush=True)

        replay_ex = SerialExecutor(cache=ResultCache(parallel_cache))
        print("cache replay (serial, warm cache) ...", flush=True)
        replay_report, replay_s = _timed_run(replay_ex, args.trials, only)
        print(
            f"  {replay_s:.1f}s, {replay_ex.computed} computed / "
            f"{replay_ex.cache_hits} from cache",
            flush=True,
        )

    byte_identical = serial_report == parallel_report
    replay_identical = serial_report == replay_report
    record = {
        "benchmark": "execution subsystem (run_all serial vs parallel vs replay)",
        "experiments": only or "all",
        "trials": args.trials,
        "jobs": args.jobs,
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "zero_timer": True,
        "tasks": serial_ex.computed,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup_parallel_vs_serial": round(serial_s / parallel_s, 3),
        "replay_s": round(replay_s, 3),
        "speedup_replay_vs_serial": round(serial_s / replay_s, 3),
        "reports_byte_identical_serial_vs_parallel": byte_identical,
        "reports_byte_identical_serial_vs_replay": replay_identical,
        "replay_recomputed_tasks": replay_ex.computed,
        "note": (
            "speedup_parallel_vs_serial is bounded by physical cores; "
            "the >=2x acceptance bar applies on >=4-core hosts. "
            "CCS_BENCH_ZERO_TIMER=1 was set so fig9's measured timings "
            "render as zeros, making the byte-identity comparison valid."
        ),
    }
    with open(args.out, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(json.dumps(record, indent=2))
    print(f"wrote {args.out}")

    ok = byte_identical and replay_identical and replay_ex.computed == 0
    if not ok:
        print("EQUIVALENCE FAILURE", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
