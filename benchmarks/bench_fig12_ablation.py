"""Fig 12 — ablation: how tariff concavity drives the value of cooperation.

Expected shape: CCSA's saving over NCA decreases monotonically (in trend)
as the tariff exponent rises toward 1, but remains positive even for the
linear tariff because the base fee is still shared.
"""

import pytest

from repro.experiments import (
    fig12_ablation_capacity,
    fig12_ablation_tariff,
    render_series,
)


def test_fig12_tariff_ablation(benchmark, once):
    result = once(
        benchmark, fig12_ablation_tariff, exponents=(0.6, 0.8, 1.0), trials=3
    )
    print()
    print(render_series(result))
    savings = result.series["CCSA saving %"]
    assert savings[0] > savings[-1]
    assert all(s > 0 for s in savings)


def test_fig12_capacity_ablation(benchmark, once):
    result = once(
        benchmark, fig12_ablation_capacity, capacities=(1, 2, 4, 8), trials=3
    )
    print()
    print(render_series(result))
    savings = result.series["CCSA saving %"]
    sizes = result.series["mean group size"]
    # Capacity 1 forbids cooperation: zero saving, singleton groups.
    assert savings[0] == pytest.approx(0.0, abs=1e-9)
    assert sizes[0] == pytest.approx(1.0)
    # Savings and group sizes grow with capacity, with diminishing returns.
    assert savings[-1] > savings[1] > savings[0]
    assert sizes == sorted(sizes)
