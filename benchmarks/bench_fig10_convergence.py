"""Fig 10 — CCSGA convergence to a pure Nash equilibrium.

Abstract claim reproduced here: "CCSGA finally converges to a pure Nash
Equilibrium."  The experiment certifies every terminal state by exhaustive
deviation enumeration and asserts the potential descended strictly; this
benchmark reports how many switches/sweeps that took as n grows.
"""

from repro.experiments import fig10_convergence, render_series


def test_fig10_convergence(benchmark, once):
    result = once(benchmark, fig10_convergence, values=(10, 25, 50, 100), trials=2)
    print()
    print(render_series(result))
    switches = result.series["switches"]
    sweeps = result.series["sweeps"]
    # Switches grow with instance size but stay far from combinatorial blowup.
    assert switches[-1] >= switches[0]
    assert switches[-1] <= 10 * 100  # well under 10 switches per device
    assert all(s <= 50 for s in sweeps)
