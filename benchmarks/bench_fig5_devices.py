"""Fig 5 — comprehensive cost vs number of devices.

Expected shape: all curves grow with n; CCSA/CCSGA stay below NCA at
every point, with CCSGA tracking CCSA closely.
"""

from repro.experiments import fig5_cost_vs_devices, render_series


def test_fig5_cost_vs_devices(benchmark, once):
    result = once(
        benchmark, fig5_cost_vs_devices, values=(10, 20, 40, 60, 80), trials=3
    )
    print()
    print(render_series(result))
    nca, ccsa_, ccsga_ = result.series["NCA"], result.series["CCSA"], result.series["CCSGA"]
    assert all(a <= b + 1e-9 for a, b in zip(ccsa_, nca))
    assert all(a <= b + 1e-9 for a, b in zip(ccsga_, nca))
    assert nca == sorted(nca)  # cost grows with n
