"""Extension — merge-and-split vs switch dynamics (CCSGA).

Two classical coalition-formation operator families on the same
instances.  Expected shape: both land far below noncooperation and within
a modest band of each other; merge-and-split performs coarser moves (few
whole-coalition operations) while CCSGA performs many single-device
switches.
"""

from repro.core import ccsga, comprehensive_cost, noncooperation
from repro.game import merge_and_split
from repro.workloads import quick_instance


def run_comparison(sizes=(10, 20, 30), seed=77):
    rows = []
    for n in sizes:
        inst = quick_instance(n_devices=n, n_chargers=4, seed=seed + n, capacity=6)
        nca = comprehensive_cost(noncooperation(inst), inst)
        ga = ccsga(inst, certify=False)
        ms = merge_and_split(inst)
        rows.append(
            (
                n,
                nca,
                comprehensive_cost(ga.schedule, inst),
                ga.switches,
                ms.total_cost,
                ms.merges + ms.splits,
                ms.stable,
            )
        )
    return rows


def test_mergesplit_vs_ccsga(benchmark, once):
    rows = once(benchmark, run_comparison)
    print()
    print(f"{'n':>4} {'NCA':>9} {'CCSGA':>9} {'switches':>9} "
          f"{'merge-split':>12} {'ops':>5} {'stable':>7}")
    for n, nca, ga, sw, ms, ops, stable in rows:
        print(f"{n:>4} {nca:>9.1f} {ga:>9.1f} {sw:>9} {ms:>12.1f} {ops:>5} {stable!s:>7}")
    for _n, nca, ga, sw, ms, ops, stable in rows:
        assert stable
        assert ga <= nca + 1e-9 and ms <= nca + 1e-9
        # Same ballpark: neither dynamic collapses.
        assert ms <= 1.3 * ga and ga <= 1.3 * ms
        # Merge-split uses far fewer (coarser) operations than switches.
        assert ops <= sw
