"""Micro-benchmark of the CCSGA hot path — the perf-trajectory anchor.

Unlike the figure-reproduction benchmarks, this one times the solver
itself: full ``ccsga()`` runs at n ∈ {50, 200, 800} devices, reporting
sweeps/sec and share-evaluations/sec (every candidate evaluation prices
exactly one hypothetical share, counted via an instrumented scheme).

Two entry points:

- ``pytest benchmarks/bench_core_hotpath.py --benchmark-only`` — timed
  under pytest-benchmark like the rest of the suite;
- ``PYTHONPATH=src python benchmarks/bench_core_hotpath.py`` — standalone,
  rewrites ``benchmarks/BENCH_ccsga.json`` (checked in; the first point
  on the performance trajectory).  Regenerate it whenever the hot path
  changes materially and record before/after in CHANGES.md.

The JSON also carries ``smoke_budget_s``, the loose wall-time budget the
tier-1 smoke test (``tests/test_bench_smoke.py`` / ``make bench-smoke``)
enforces with a 3× margin to catch accidental O(n²) reintroductions.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.core import EgalitarianSharing, ccsga
from repro.workloads import quick_instance

HERE = Path(__file__).parent
RESULT_FILE = HERE / "BENCH_ccsga.json"

SIZES = ((50, 6), (200, 10), (800, 16))
SEED = 42
SIDE = 1000.0
CAPACITY = 8

# The tier-1 smoke case: small enough to stay cheap in CI, large enough
# that a reintroduced O(n * sum |S|) scan blows the 3x budget.
SMOKE_N, SMOKE_M = 300, 10
SMOKE_BUDGET_S = 0.6


class _CountingScheme:
    """Delegating scheme wrapper that counts share evaluations.

    Counts both the O(1) aggregate fast path (``share_of``) and full
    ``shares`` dict builds, so the metric is comparable across engine
    generations.
    """

    def __init__(self, inner):
        self.inner = inner
        self.name = inner.name
        self.count = 0
        if hasattr(inner, "share_of"):
            self.share_of = self._share_of

    def shares(self, instance, members, charger):
        self.count += 1
        return self.inner.shares(instance, members, charger)

    def _share_of(self, instance, device, size, total_demand, price):
        self.count += 1
        return self.inner.share_of(instance, device, size, total_demand, price)


def _instance(n, m):
    return quick_instance(
        n_devices=n, n_chargers=m, seed=SEED, capacity=CAPACITY, side=SIDE
    )


def run_case(n, m):
    """Time one full ccsga() run and return its hot-path metrics."""
    instance = _instance(n, m)
    scheme = _CountingScheme(EgalitarianSharing())
    start = time.perf_counter()
    result = ccsga(instance, scheme=scheme, certify=False)
    wall = time.perf_counter() - start
    return {
        "n_devices": n,
        "n_chargers": m,
        "seed": SEED,
        "wall_s": round(wall, 6),
        "sweeps": result.sweeps,
        "switches": result.switches,
        "sweeps_per_sec": round(result.sweeps / wall, 3),
        "share_evals": scheme.count,
        "share_evals_per_sec": round(scheme.count / wall, 1),
    }


def test_hotpath_n50(once, benchmark):
    stats = once(benchmark, run_case, 50, 6)
    assert stats["sweeps"] >= 1


def test_hotpath_n200(once, benchmark):
    stats = once(benchmark, run_case, 200, 10)
    assert stats["sweeps"] >= 1


def test_hotpath_n800(once, benchmark):
    stats = once(benchmark, run_case, 800, 16)
    assert stats["sweeps"] >= 1


def main():
    cases = []
    for n, m in SIZES:
        stats = run_case(n, m)
        cases.append(stats)
        print(
            f"n={n:4d} m={m:3d}: {stats['wall_s']:.3f}s "
            f"{stats['sweeps_per_sec']:.1f} sweeps/s "
            f"{stats['share_evals_per_sec']:.0f} share-evals/s",
            flush=True,
        )
    smoke = run_case(SMOKE_N, SMOKE_M)
    print(f"smoke (n={SMOKE_N}): {smoke['wall_s']:.3f}s (budget {SMOKE_BUDGET_S}s)")
    payload = {
        "benchmark": "ccsga_hotpath",
        "workload": {"seed": SEED, "side": SIDE, "capacity": CAPACITY},
        "cases": cases,
        "smoke": {
            "n_devices": SMOKE_N,
            "n_chargers": SMOKE_M,
            "wall_s": smoke["wall_s"],
            "budget_s": SMOKE_BUDGET_S,
            "fail_factor": 3.0,
        },
    }
    with open(RESULT_FILE, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    print(f"wrote {RESULT_FILE}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
