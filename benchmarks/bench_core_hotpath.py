"""Micro-benchmark of the CCSGA hot path — the perf-trajectory anchor.

Unlike the figure-reproduction benchmarks, this one times the solver
itself: full ``ccsga()`` runs, reporting sweeps/sec and
share-evaluations/sec (every candidate evaluation prices exactly one
hypothetical share, counted via an instrumented scheme).  Since the
array engine landed, every size runs under both engines where feasible:

- **both engines** at n ∈ {50, 200, 800} — the paired cases quantify the
  vectorization speedup directly;
- **array engine only** at n ∈ {5,000, 20,000, 50,000} — the object
  engine's per-candidate python scan is capped at n ≤ 800
  (``OBJECT_CAP_N``); beyond that its wall time is minutes and teaches
  nothing new.  Large-case speedups are reported against the object
  engine's best recorded throughput (its n=800 case).

Three entry points:

- ``pytest benchmarks/bench_core_hotpath.py --benchmark-only`` — timed
  under pytest-benchmark like the rest of the suite;
- ``PYTHONPATH=src python benchmarks/bench_core_hotpath.py`` — standalone,
  rewrites ``benchmarks/BENCH_ccsga.json`` (checked in; the performance
  trajectory).  Regenerate it whenever the hot path changes materially
  and record before/after in CHANGES.md;
- ``... bench_core_hotpath.py --skip-large`` (``make bench-hotpath``) —
  re-measures the small paired cases and the smoke budget only, keeping
  the checked-in large-case numbers; ``make bench-large`` drops the flag
  and re-measures everything up to n=50,000 (~a minute of wall time).

The JSON also carries ``smoke_budget_s``, the loose wall-time budget the
tier-1 smoke test (``tests/test_bench_smoke.py`` / ``make bench-smoke``)
enforces with a 3× margin to catch accidental O(n²) reintroductions.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import EgalitarianSharing, ccsga

HERE = Path(__file__).parent
RESULT_FILE = HERE / "BENCH_ccsga.json"

SIZES = ((50, 6), (200, 10), (800, 16))
LARGE_SIZES = ((5_000, 32), (20_000, 48), (50_000, 64))
SEED = 42
SIDE = 1000.0
CAPACITY = 8

# Above this the object engine's python candidate scan takes minutes per
# run; only the array engine is measured there.
OBJECT_CAP_N = 800

# The tier-1 smoke case: small enough to stay cheap in CI, large enough
# that a reintroduced O(n * sum |S|) scan blows the 3x budget.
SMOKE_N, SMOKE_M = 300, 10
SMOKE_BUDGET_S = 0.6


class _CountingScheme:
    """Delegating scheme wrapper that counts share evaluations.

    Counts the O(1) aggregate fast path (``share_of``), full ``shares``
    dict builds, and the array engine's batched ``share_of_vector``
    (one evaluation per candidate in the batch), so the metric is
    comparable across engine generations.
    """

    def __init__(self, inner):
        self.inner = inner
        self.name = inner.name
        self.count = 0
        if hasattr(inner, "share_of"):
            self.share_of = self._share_of
        if hasattr(inner, "share_of_vector"):
            self.share_of_vector = self._share_of_vector

    def shares(self, instance, members, charger):
        self.count += 1
        return self.inner.shares(instance, members, charger)

    def _share_of(self, instance, device, size, total_demand, price):
        self.count += 1
        return self.inner.share_of(instance, device, size, total_demand, price)

    def _share_of_vector(self, instance, device, sizes, total_demands, prices):
        # One evaluation per candidate in the batch; ``sizes`` may be a
        # broadcast scalar, so the prices vector carries the batch length.
        self.count += int(np.size(prices))
        return self.inner.share_of_vector(
            instance, device, sizes, total_demands, prices
        )


def _instance(n, m):
    from repro.workloads import quick_instance

    return quick_instance(
        n_devices=n, n_chargers=m, seed=SEED, capacity=CAPACITY, side=SIDE
    )


def run_case(n, m, engine="object"):
    """Time one full ccsga() run and return its hot-path metrics."""
    instance = _instance(n, m)
    scheme = _CountingScheme(EgalitarianSharing())
    start = time.perf_counter()
    result = ccsga(instance, scheme=scheme, certify=False, engine=engine)
    wall = time.perf_counter() - start
    return {
        "n_devices": n,
        "n_chargers": m,
        "seed": SEED,
        "engine": result.engine,
        "wall_s": round(wall, 6),
        "sweeps": result.sweeps,
        "switches": result.switches,
        "sweeps_per_sec": round(result.sweeps / wall, 3),
        "share_evals": scheme.count,
        "share_evals_per_sec": round(scheme.count / wall, 1),
    }


def test_hotpath_n50(once, benchmark):
    stats = once(benchmark, run_case, 50, 6)
    assert stats["sweeps"] >= 1


def test_hotpath_n200(once, benchmark):
    stats = once(benchmark, run_case, 200, 10)
    assert stats["sweeps"] >= 1


def test_hotpath_n800(once, benchmark):
    stats = once(benchmark, run_case, 800, 16)
    assert stats["sweeps"] >= 1


def test_hotpath_n800_array(once, benchmark):
    stats = once(benchmark, run_case, 800, 16, "array")
    assert stats["sweeps"] >= 1 and stats["engine"] == "array"


def test_hotpath_n5000_array(once, benchmark):
    stats = once(benchmark, run_case, 5_000, 32, "array")
    assert stats["sweeps"] >= 1 and stats["engine"] == "array"


def _print_case(stats):
    print(
        f"n={stats['n_devices']:6d} m={stats['n_chargers']:3d} "
        f"[{stats['engine']:6s}]: {stats['wall_s']:8.3f}s "
        f"{stats['sweeps_per_sec']:9.1f} sweeps/s "
        f"{stats['share_evals_per_sec']:12.0f} share-evals/s",
        flush=True,
    )


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    skip_large = "--skip-large" in argv

    cases = []
    for n, m in SIZES:
        for engine in ("object", "array"):
            stats = run_case(n, m, engine)
            cases.append(stats)
            _print_case(stats)

    # Object baseline for large-case speedups: its best recorded
    # throughput (the engines' eval counts per candidate are identical,
    # so evals/sec is the honest cross-size comparator).
    object_evals_per_sec = max(
        c["share_evals_per_sec"] for c in cases if c["engine"] == "object"
    )

    large = []
    if not skip_large:
        for n, m in LARGE_SIZES:
            stats = run_case(n, m, "array")
            stats["speedup_vs_object"] = round(
                stats["share_evals_per_sec"] / object_evals_per_sec, 2
            )
            large.append(stats)
            _print_case(stats)
            print(
                f"        speedup vs object engine (evals/s, object n<=800 "
                f"baseline): {stats['speedup_vs_object']:.1f}x",
                flush=True,
            )

    smoke = run_case(SMOKE_N, SMOKE_M)
    print(f"smoke (n={SMOKE_N}): {smoke['wall_s']:.3f}s (budget {SMOKE_BUDGET_S}s)")

    payload = {
        "benchmark": "ccsga_hotpath",
        "workload": {"seed": SEED, "side": SIDE, "capacity": CAPACITY},
        "object_cap_n": OBJECT_CAP_N,
        "cases": cases,
        "large": large,
        "smoke": {
            "n_devices": SMOKE_N,
            "n_chargers": SMOKE_M,
            "wall_s": smoke["wall_s"],
            "budget_s": SMOKE_BUDGET_S,
            "fail_factor": 3.0,
        },
    }
    if skip_large:
        # Don't drop the checked-in large-case measurements on a quick run.
        try:
            with open(RESULT_FILE) as fh:
                payload["large"] = json.load(fh).get("large", [])
        except (OSError, json.JSONDecodeError):
            pass
    with open(RESULT_FILE, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    print(f"wrote {RESULT_FILE}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
